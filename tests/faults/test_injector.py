"""Armed fault injection on a live (small) campaign."""

import numpy as np
import pytest

from repro.core.study import StudyConfig, WorkloadStudy
from repro.faults.events import COLLECTOR_DROPOUT, NODE_CRASH
from repro.faults.profile import PROFILES, FaultProfile

STORMY = FaultProfile(
    name="stormy",
    node_mtbf_days=2.0,
    node_mttr_hours=4.0,
    switch_mtbf_days=2.0,
    switch_mttr_hours=2.0,
    storm_mtbf_days=2.0,
    collector_dropout_rate=0.05,
)


@pytest.fixture(scope="module")
def faulted():
    cfg = StudyConfig(seed=5, n_days=4, n_nodes=16, n_users=6, fault_profile=STORMY)
    return WorkloadStudy(cfg).run()


class TestConsequences:
    def test_fault_log_populated(self, faulted):
        log = faulted.faults
        assert log is not None
        kinds = log.counts_by_kind()
        assert kinds.get(NODE_CRASH, 0) > 0
        assert kinds.get(COLLECTOR_DROPOUT, 0) > 0
        assert log.horizon_seconds == 4 * 86400.0
        assert log.n_nodes == 16

    def test_crashes_kill_and_requeue_jobs(self, faulted):
        log = faulted.faults
        assert log.jobs_killed > 0
        assert 0 <= log.jobs_requeued <= log.jobs_killed
        assert log.retries_exhausted <= log.jobs_killed

    def test_downtime_costs_availability(self, faulted):
        log = faulted.faults
        assert log.node_down_seconds > 0
        assert 0.0 < log.availability() < 1.0

    def test_dropped_passes_leave_gaps(self, faulted):
        assert faulted.collector.passes_dropped > 0
        gaps = faulted.collector.gap_intervals()
        assert len(gaps) > 0
        # Samples are fewer than the gap-free cadence would produce.
        expected_full = 4 * 96 + 1  # 15-minute passes plus the baseline
        assert len(faulted.collector.samples) == expected_full - faulted.collector.passes_dropped

    def test_counters_stay_monotone_through_crashes(self, faulted):
        """Halted nodes freeze their counters but never lose them, so the
        collector's delta algebra keeps working across repair."""
        last: dict[int, np.ndarray] = {}
        for sample in faulted.collector.samples:
            for nid, row in zip(sample.node_ids, sample.matrix):
                prev = last.get(nid)
                if prev is not None:
                    assert np.all(row >= prev), f"node {nid} counters went backwards"
                last[nid] = row

    def test_telemetry_saw_the_faults(self, faulted):
        t = faulted.telemetry
        assert t.faults_seen == len(faulted.faults.events)
        assert t.jobs_killed_seen == faulted.faults.jobs_killed
        assert t.collector_gaps_seen == faulted.faults.passes_dropped
        assert any(a.rule == "fault" for a in t.alerts)
        summary = t.summary()
        assert summary["faults_seen"] == t.faults_seen

    def test_analyses_survive_a_faulted_campaign(self, faulted):
        daily = faulted.daily_gflops()
        assert len(daily) == 4
        assert np.all(np.isfinite(daily))


class TestHealthyPathUnchanged:
    def test_null_profile_is_byte_identical_to_no_profile(self):
        base = StudyConfig(seed=11, n_days=2, n_nodes=16, n_users=6)
        null = StudyConfig(
            seed=11, n_days=2, n_nodes=16, n_users=6, fault_profile=PROFILES["none"]
        )
        a = WorkloadStudy(base).run()
        b = WorkloadStudy(null).run()
        assert b.faults is None
        assert len(a.collector.samples) == len(b.collector.samples)
        for x, y in zip(a.collector.samples, b.collector.samples):
            assert x.time == y.time
            assert np.array_equal(x.matrix, y.matrix)
        assert [r.job_id for r in a.accounting.records] == [
            r.job_id for r in b.accounting.records
        ]
        assert a.events_processed == b.events_processed
