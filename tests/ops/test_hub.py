"""The campaign hub: lifecycle, bounded residency, query surface."""

import numpy as np
import pytest

from repro.ops.hub import CampaignHub, HubFull, UnknownCampaign, UnknownJob, UnknownMetric
from repro.ops.ingest import replay_into_hub


@pytest.fixture(scope="module")
def loaded_hub(tiny_dataset):
    hub = CampaignHub()
    hub.register("camp", kind="single", meta={"seed": 3})
    replay_into_hub(hub, "camp", tiny_dataset)
    hub.complete("camp", {"jobs": len(tiny_dataset.accounting)})
    return hub


class TestLifecycle:
    def test_duplicate_registration_rejected(self):
        hub = CampaignHub()
        hub.register("a")
        with pytest.raises(ValueError, match="already registered"):
            hub.register("a")

    def test_fleet_requires_members(self):
        with pytest.raises(ValueError, match="member names"):
            CampaignHub().register("f", kind="fleet")

    def test_unknown_campaign_raises(self):
        with pytest.raises(UnknownCampaign, match="unknown campaign"):
            CampaignHub().handle("ghost")

    def test_oldest_finished_campaign_evicted_at_cap(self):
        hub = CampaignHub(max_campaigns=2)
        hub.register("one")
        hub.complete("one")
        hub.register("two")
        hub.complete("two")
        hub.register("three")  # evicts "one", the oldest finished
        assert "one" not in hub
        assert hub.names() == ["two", "three"]
        assert hub.campaigns_evicted == 1

    def test_running_campaigns_never_evicted(self):
        hub = CampaignHub(max_campaigns=1)
        hub.register("busy")  # still running
        with pytest.raises(HubFull, match="running campaigns"):
            hub.register("next")


class TestQuerySurface:
    def test_catalog_counts(self, loaded_hub, tiny_dataset):
        cat = loaded_hub.catalog()
        assert [c["name"] for c in cat["campaigns"]] == ["camp"]
        entry = cat["campaigns"][0]
        assert entry["status"] == "complete"
        assert entry["jobs_finished"] == len(tiny_dataset.accounting)
        assert entry["events_fed"] > 0
        assert entry["points_dropped"] == 0
        assert entry["meta"]["seed"] == 3

    def test_metric_names_match_store(self, loaded_hub, tiny_dataset):
        assert loaded_hub.metric_names("camp") == tiny_dataset.telemetry.store.names()

    def test_series_snapshot_matches_live_store(self, loaded_hub, tiny_dataset):
        snap = loaded_hub.series_snapshot("camp", "gflops.system")
        _, live = tiny_dataset.telemetry.store.window("gflops.system")
        assert np.array_equal(snap.values, live)

    def test_unknown_metric_raises(self, loaded_hub):
        with pytest.raises(UnknownMetric):
            loaded_hub.series_snapshot("camp", "bogus.metric")

    def test_snapshot_isolated_from_later_feeds(self, tiny_dataset):
        hub = CampaignHub()
        hub.register("iso")
        replay_into_hub(hub, "iso", tiny_dataset)
        snap = hub.series_snapshot("iso", "gflops.system")
        before = snap.values.copy()
        # The campaign keeps streaming after the snapshot was taken.
        store = hub.handle("iso").service(None).store
        store.append("gflops.system", snap.times[-1] + 900.0, 1e9)
        assert np.array_equal(snap.values, before)
        assert hub.series_snapshot("iso", "gflops.system").count == snap.count + 1

    def test_alert_cursor_pagination(self, loaded_hub):
        all_entries, cursor = loaded_hub.alerts_since("camp", 0)
        assert cursor == len(all_entries)
        again, cursor2 = loaded_hub.alerts_since("camp", cursor)
        assert again == [] and cursor2 == cursor

    def test_alert_listener_sees_fed_alerts(self, tiny_dataset):
        hub = CampaignHub()
        hub.register("live")
        seen = []
        hub.add_alert_listener(lambda name, member, alert: seen.append((name, alert)))
        replay_into_hub(hub, "live", tiny_dataset)
        log, _ = hub.alerts_since("live", 0)
        assert [a for _, a in seen] == [a for _, a in log]

    def test_job_report_renders(self, loaded_hub, tiny_dataset):
        job_id = tiny_dataset.accounting.records[0].job_id
        text = loaded_hub.job_report("camp", job_id)
        assert f"job {job_id} performance report" in text
        assert "throughput" in text
        # The tiny campaign is traced, so attribution must be real.
        assert "critical" in text

    def test_job_report_unknown_job(self, loaded_hub):
        with pytest.raises(UnknownJob, match="no finished job"):
            loaded_hub.job_report("camp", 10**9)
