"""Satellite determinism contract: for a two-member fleet campaign, the
online service state must equal ``replay()`` state — per member AND for
the federated ``fleet.*`` namespace.

Live path: ``ingest_fleet`` taps each member's bus as it runs (serial
member path).  Replay path: an *independent* ``run_fleet`` of the same
spec, streamed through ``replay_fleet_into_hub`` — the canonical
``replay_events`` ordering.  Both hubs must agree on everything the
query API serves from samples and records.
"""

import asyncio

import numpy as np
import pytest

from repro.fleet.runner import run_fleet
from repro.ops import CampaignHub, ingest_fleet
from repro.ops.ingest import replay_fleet_into_hub

#: Series that replay reproduces exactly (jobs.active is documented to
#: undercount in replay: only finished jobs leave accounting records).
DETERMINISTIC_SERIES = (
    "gflops.system",
    "fxu.sys_user_ratio",
    "tlb.miss_rate",
    "dcache.miss_rate",
    "nodes.reporting",
)


@pytest.fixture(scope="module")
def live_hub(tiny_fleet_spec):
    hub = CampaignHub()
    asyncio.run(ingest_fleet(hub, "fed", tiny_fleet_spec))
    return hub


@pytest.fixture(scope="module")
def replay_hub(tiny_fleet_spec):
    fleet = run_fleet(tiny_fleet_spec)
    hub = CampaignHub()
    hub.register(
        "fed",
        kind="fleet",
        members=tuple(m.name for m in tiny_fleet_spec.members),
        node_weights={m.name: m.n_nodes for m in tiny_fleet_spec.members},
    )
    replay_fleet_into_hub(hub, "fed", fleet)
    hub.complete("fed")
    return hub


def _assert_snapshots_equal(a, b, label):
    assert np.array_equal(a.times, b.times), label
    assert np.array_equal(a.values, b.values), label
    assert a.count == b.count and a.dropped == b.dropped, label
    assert a.summary() == b.summary(), label


class TestPerMember:
    def test_member_series_equal(self, live_hub, replay_hub, tiny_fleet_spec):
        for member in tiny_fleet_spec.members:
            for metric in DETERMINISTIC_SERIES:
                name = f"fleet.{member.name}.{metric}"
                _assert_snapshots_equal(
                    live_hub.series_snapshot("fed", name),
                    replay_hub.series_snapshot("fed", name),
                    name,
                )

    def test_member_alerts_equal(self, live_hub, replay_hub):
        live, _ = live_hub.alerts_since("fed", 0)
        rep, _ = replay_hub.alerts_since("fed", 0)
        # Same alerts per member; global interleaving may differ (live
        # members run serially, replay streams member by member too, so
        # here even the order matches).
        assert live == rep

    def test_member_rollups_equal(self, live_hub, replay_hub, tiny_fleet_spec):
        for member in tiny_fleet_spec.members:
            live = [
                r.job_id for _, r in live_hub.job_rollups("fed", member=member.name)
            ]
            rep = [
                r.job_id for _, r in replay_hub.job_rollups("fed", member=member.name)
            ]
            assert live == rep and live, member.name


class TestFederated:
    def test_rollup_series_equal(self, live_hub, replay_hub):
        for metric in DETERMINISTIC_SERIES:
            name = f"fleet.{metric}"
            _assert_snapshots_equal(
                live_hub.series_snapshot("fed", name),
                replay_hub.series_snapshot("fed", name),
                name,
            )

    def test_metric_namespaces_equal(self, live_hub, replay_hub):
        assert live_hub.metric_names("fed") == replay_hub.metric_names("fed")

    def test_federated_sum_is_member_sum(self, live_hub, tiny_fleet_spec):
        """At every timestamp the capacity rollup equals the sum of the
        members that reported there."""
        rollup = live_hub.series_snapshot("fed", "fleet.gflops.system")
        members = [
            live_hub.series_snapshot("fed", f"fleet.{m.name}.gflops.system")
            for m in tiny_fleet_spec.members
        ]
        expected = np.zeros(len(rollup.times))
        for snap in members:
            idx = np.searchsorted(rollup.times, snap.times)
            expected[idx] += snap.values
        assert np.allclose(rollup.values, expected, rtol=0, atol=1e-12)
        assert rollup.values.max() > 0

    def test_job_reports_equal(self, live_hub, replay_hub):
        rollups = live_hub.job_rollups("fed")
        job_id = rollups[0][1].job_id
        assert live_hub.job_report("fed", job_id) == replay_hub.job_report(
            "fed", job_id
        )
