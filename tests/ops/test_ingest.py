"""Live ingest: taps are invisible, hub state equals replay state."""

import asyncio

import numpy as np
import pytest

from repro.analysis.export import dataset_to_json
from repro.core.study import WorkloadStudy
from repro.ops import CampaignHub, ingest_study
from repro.ops.ingest import TAPPED_TOPICS, BusTap, replay_into_hub
from repro.tracing.tracer import Tracer

from .conftest import tiny_config


@pytest.fixture(scope="module")
def ingested(tiny_dataset):
    """One live ingest of the tiny campaign (hub + its own dataset)."""
    hub = CampaignHub()
    dataset = asyncio.run(ingest_study(hub, "live", tiny_config(), trace=True))
    return hub, dataset


class TestTapInvisibility:
    def test_attached_output_byte_identical_to_detached(self, ingested, tiny_dataset):
        _, attached = ingested
        # tiny_dataset ran the identical config with no hub attached;
        # the ingest tap only *subscribes*, so the exports must match
        # byte for byte (the PR's acceptance contract).
        assert dataset_to_json(attached) == dataset_to_json(tiny_dataset)

    def test_tap_forwards_every_tapped_topic_event(self, tiny_dataset):
        forwarded = []
        study = WorkloadStudy(tiny_config(), tracer=Tracer())
        tap = BusTap(lambda topic, event: forwarded.append(topic))
        tap.attach(study.bus)
        study.run()
        assert tap.forwarded == len(forwarded)
        assert set(forwarded) <= set(TAPPED_TOPICS)
        assert tap.forwarded > 0


class TestHubEqualsReplay:
    """The live-fed hub must equal a hub fed by ``replay_events`` — the
    determinism theorem the shared generator makes true by construction
    (modulo ``jobs.active``, which replay documents as undercounting
    near the horizon: only finished jobs leave records)."""

    DETERMINISTIC_SERIES = (
        "gflops.system",
        "fxu.sys_user_ratio",
        "tlb.miss_rate",
        "nodes.reporting",
    )

    @pytest.fixture(scope="class")
    def replayed(self, ingested):
        _, dataset = ingested
        hub = CampaignHub()
        hub.register("replayed")
        replay_into_hub(hub, "replayed", dataset)
        return hub

    def test_metric_series_match(self, ingested, replayed):
        live_hub, _ = ingested
        for name in self.DETERMINISTIC_SERIES:
            live = live_hub.series_snapshot("live", name)
            rep = replayed.series_snapshot("replayed", name)
            assert np.array_equal(live.times, rep.times), name
            assert np.array_equal(live.values, rep.values), name
            assert live.summary() == rep.summary(), name

    def test_alert_logs_match(self, ingested, replayed):
        live_hub, _ = ingested
        live_log, _ = live_hub.alerts_since("live", 0)
        rep_log, _ = replayed.alerts_since("replayed", 0)
        assert [a for _, a in live_log] == [a for _, a in rep_log]
        assert len(live_log) > 0

    def test_finished_rollups_match(self, ingested, replayed):
        live_hub, _ = ingested
        live_ids = [r.job_id for _, r in live_hub.job_rollups("live")]
        rep_ids = [r.job_id for _, r in replayed.job_rollups("replayed")]
        assert live_ids == rep_ids

    def test_job_reports_match(self, ingested, replayed):
        live_hub, dataset = ingested
        job_id = dataset.accounting.records[0].job_id
        live_text = live_hub.job_report("live", job_id)
        rep_text = replayed.job_report("replayed", job_id)
        # Reports name their campaign; normalize before comparing.
        assert live_text.replace("live", "X") == rep_text.replace("replayed", "X")


class TestIngestLifecycle:
    def test_campaign_completes_with_job_count(self, ingested):
        hub, dataset = ingested
        handle = hub.handle("live")
        assert handle.status == "complete"
        assert handle.meta["jobs"] == len(dataset.accounting)

    def test_failed_ingest_completes_with_error(self, monkeypatch):
        """A crashed campaign must not stay "running" — running
        campaigns are exempt from hub eviction, so a leak here would pin
        a slot forever."""
        import repro.ops.ingest as ingest_mod

        from repro.telemetry.bus import EventBus

        class ExplodingStudy:
            def __init__(self, *args, **kwargs):
                self.bus = EventBus()

            def run(self):
                raise RuntimeError("boom")

        monkeypatch.setattr(ingest_mod, "WorkloadStudy", ExplodingStudy)
        hub = CampaignHub()
        with pytest.raises(RuntimeError, match="boom"):
            asyncio.run(ingest_study(hub, "doomed", tiny_config()))
        handle = hub.handle("doomed")
        assert handle.status == "complete"
        assert handle.meta["error"] is True
