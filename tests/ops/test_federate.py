"""Fleet metric federation: naming, alignment, sum vs weighted mean."""

import numpy as np
import pytest

from repro.ops.federate import (
    SUM_METRICS,
    federate_series,
    federated_names,
    member_metric,
    parse_fleet_metric,
    rollup_metric,
)
from repro.telemetry.store import SeriesSnapshot


def snap(name, times, values, dropped=0):
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    return SeriesSnapshot(
        name=name,
        count=len(values),
        dropped=dropped,
        ewma=float(values[-1]) if len(values) else 0.0,
        min=float(values.min()) if len(values) else 0.0,
        max=float(values.max()) if len(values) else 0.0,
        quantiles={},
        times=times,
        values=values,
    )


class TestNames:
    def test_member_and_rollup_names(self):
        assert member_metric("west", "gflops.system") == "fleet.west.gflops.system"
        assert rollup_metric("gflops.system") == "fleet.gflops.system"

    def test_parse_member_name(self):
        members = ("west", "east")
        assert parse_fleet_metric("fleet.west.tlb.miss_rate", members) == (
            "west",
            "tlb.miss_rate",
        )

    def test_parse_rollup_name(self):
        assert parse_fleet_metric("fleet.tlb.miss_rate", ("west", "east")) == (
            None,
            "tlb.miss_rate",
        )

    def test_parse_rejects_bare_names(self):
        assert parse_fleet_metric("gflops.system", ("west",)) is None

    def test_metric_shadowing_member_prefix_resolves_to_member(self):
        # "fleet.west.x" with a member literally named "west" must pick
        # the member, not a metric called "west.x".
        assert parse_fleet_metric("fleet.west.x", ("west",)) == ("west", "x")

    def test_federated_names_complete_and_sorted(self):
        names = federated_names(("b", "a"), ["m2", "m1"])
        assert names == sorted(names)
        assert "fleet.m1" in names and "fleet.a.m2" in names
        assert len(names) == 2 + 2 * 2


class TestFederateSeries:
    def test_capacity_metric_sums(self):
        merged = federate_series(
            "gflops.system",
            {
                "west": snap("gflops.system", [0, 900], [1.0, 2.0]),
                "east": snap("gflops.system", [0, 900], [10.0, 20.0]),
            },
            {"west": 32, "east": 64},
        )
        assert merged.name == "fleet.gflops.system"
        assert np.array_equal(merged.values, [11.0, 22.0])

    def test_per_node_metric_weighted_mean(self):
        merged = federate_series(
            "tlb.miss_rate",
            {
                "west": snap("tlb.miss_rate", [0], [1.0]),
                "east": snap("tlb.miss_rate", [0], [4.0]),
            },
            {"west": 32, "east": 96},
        )
        # (1*32 + 4*96) / 128 = 3.25
        assert merged.values[0] == pytest.approx(3.25)

    def test_misaligned_timestamps_use_reporting_members(self):
        merged = federate_series(
            "tlb.miss_rate",
            {
                "west": snap("tlb.miss_rate", [0, 900], [2.0, 6.0]),
                "east": snap("tlb.miss_rate", [900, 1800], [10.0, 12.0]),
            },
            {"west": 10, "east": 30},
        )
        assert np.array_equal(merged.times, [0, 900, 1800])
        # t=0: west only; t=900: both (weighted); t=1800: east only.
        assert merged.values[0] == pytest.approx(2.0)
        assert merged.values[1] == pytest.approx((6.0 * 10 + 10.0 * 30) / 40)
        assert merged.values[2] == pytest.approx(12.0)

    def test_dropped_sums_across_members(self):
        merged = federate_series(
            "tlb.miss_rate",
            {
                "west": snap("tlb.miss_rate", [0], [1.0], dropped=3),
                "east": snap("tlb.miss_rate", [0], [1.0], dropped=4),
            },
            {"west": 1, "east": 1},
        )
        assert merged.dropped == 7

    def test_empty_members_yield_empty_rollup(self):
        merged = federate_series("x", {"west": None}, {})
        assert merged.count == 0 and merged.size == 0

    def test_quantiles_exact_over_merge(self):
        values = list(range(1, 101))
        merged = federate_series(
            "gflops.system",
            {"only": snap("gflops.system", list(range(100)), values)},
            {"only": 1},
        )
        assert merged.quantiles[0.5] == pytest.approx(np.percentile(values, 50))

    def test_sum_metrics_cover_capacity_series(self):
        assert "gflops.system" in SUM_METRICS
        assert "nodes.reporting" in SUM_METRICS
        assert "tlb.miss_rate" not in SUM_METRICS
