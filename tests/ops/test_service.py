"""The TCP service end to end: round trips, pushes, clean shutdown."""

import asyncio

import pytest

from repro.ops import CampaignHub, OpsClient, OpsServer, OpsServiceError
from repro.ops.ingest import replay_into_hub


def serve(test_coro_factory, *, hub=None):
    """Run one async test body against a freshly started server."""

    async def runner():
        local_hub = hub or CampaignHub()
        server = await OpsServer.start(local_hub)
        try:
            return await test_coro_factory(local_hub, server)
        finally:
            await server.close()

    return asyncio.run(runner())


@pytest.fixture(scope="module")
def served_hub(tiny_dataset):
    hub = CampaignHub()
    hub.register("camp", kind="single")
    replay_into_hub(hub, "camp", tiny_dataset)
    hub.complete("camp")
    return hub


class TestRoundTrips:
    def test_ping_catalog_query_jobs_report(self, served_hub, tiny_dataset):
        async def body(hub, server):
            async with await OpsClient.connect("127.0.0.1", server.port) as client:
                ping = await client.request("ping")
                assert ping["campaigns"] == 1
                catalog = await client.request("catalog")
                assert catalog["campaigns"][0]["name"] == "camp"
                metrics = await client.request("metrics", campaign="camp")
                assert "gflops.system" in metrics["metrics"]
                query = await client.request(
                    "query", campaign="camp", metric="gflops.system", points=True
                )
                assert query["count"] == len(query["values"])
                assert query["dropped"] == 0
                jobs = await client.request("jobs", campaign="camp")
                assert jobs["finished"] == len(tiny_dataset.accounting)
                job_id = jobs["jobs"][0]["job_id"]
                report = await client.request("report", campaign="camp", job=job_id)
                assert f"job {job_id} performance report" in report["report"]
                stats = await client.request("stats")
                assert stats["requests_served"] >= 6

        serve(body, hub=served_hub)

    def test_error_codes(self, served_hub):
        async def body(hub, server):
            async with await OpsClient.connect("127.0.0.1", server.port) as client:
                for op, operands, code in (
                    ("nope", {}, "unknown-op"),
                    ("query", {}, "bad-request"),
                    ("query", {"campaign": "ghost", "metric": "x"}, "unknown-campaign"),
                    ("query", {"campaign": "camp", "metric": "x"}, "unknown-metric"),
                    ("report", {"campaign": "camp", "job": 10**9}, "unknown-job"),
                ):
                    with pytest.raises(OpsServiceError) as err:
                        await client.request(op, **operands)
                    assert err.value.code == code
                # The connection survives every error above.
                assert (await client.request("ping"))["ok"] is True

        serve(body, hub=served_hub)

    def test_many_concurrent_clients(self, served_hub):
        async def body(hub, server):
            async def one_client(i):
                async with await OpsClient.connect("127.0.0.1", server.port) as c:
                    q = await c.request(
                        "query", campaign="camp", metric="gflops.system"
                    )
                    return q["count"]

            counts = await asyncio.gather(*(one_client(i) for i in range(64)))
            assert len(set(counts)) == 1  # same snapshot for everyone

        serve(body, hub=served_hub)


class TestAlertPushes:
    def test_subscribed_client_receives_live_alerts(self, tiny_dataset):
        async def body(hub, server):
            hub.register("camp", kind="single")
            async with await OpsClient.connect("127.0.0.1", server.port) as client:
                sub = await client.request("subscribe", campaign="camp")
                assert sub["subscriptions"] == ["camp"]
                replay_into_hub(hub, "camp", tiny_dataset)
                expected, _ = hub.alerts_since("camp", 0)
                assert expected, "tiny campaign fired no alerts (fixture too quiet)"
                pushes = [
                    await client.next_push(5.0) for _ in range(len(expected))
                ]
                assert [p["alert"]["rule"] for p in pushes] == [
                    a.rule for _, a in expected
                ]
                assert all(p["campaign"] == "camp" for p in pushes)

        serve(body)

    def test_unsubscribed_client_gets_no_pushes(self, tiny_dataset):
        async def body(hub, server):
            hub.register("camp", kind="single")
            async with await OpsClient.connect("127.0.0.1", server.port) as client:
                await client.request("subscribe", campaign="camp")
                await client.request("unsubscribe", campaign="camp")
                replay_into_hub(hub, "camp", tiny_dataset)
                await client.request("ping")  # round-trip barrier
                assert client.pushes.empty()

        serve(body)

    def test_subscribe_unknown_campaign_rejected(self, served_hub):
        async def body(hub, server):
            async with await OpsClient.connect("127.0.0.1", server.port) as client:
                with pytest.raises(OpsServiceError) as err:
                    await client.request("subscribe", campaign="ghost")
                assert err.value.code == "unknown-campaign"

        serve(body, hub=served_hub)


class TestShutdown:
    def test_shutdown_op_stops_service_cleanly(self, served_hub):
        async def body():
            server = await OpsServer.start(served_hub)
            port = server.port
            serving = asyncio.ensure_future(server.serve_until_shutdown())
            async with await OpsClient.connect("127.0.0.1", port) as client:
                ack = await client.request("shutdown")
                assert ack["stopping"] is True
            await asyncio.wait_for(serving, 5.0)
            # A new connection must now be refused.
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)

        asyncio.run(body())


class TestHubIsBounded:
    def test_ring_capacity_applies_to_hub_services(self, tiny_dataset):
        hub = CampaignHub(store_capacity=8)
        hub.register("tight")
        replay_into_hub(hub, "tight", tiny_dataset)
        entry = hub.catalog()["campaigns"][0]
        assert entry["points_dropped"] > 0
        snap = hub.store_snapshot("tight")
        assert all(snap[n].size <= 8 for n in snap.names())

    def test_series_cap_applies_to_hub_services(self, tiny_dataset):
        hub = CampaignHub(max_series=4)
        hub.register("tight")
        replay_into_hub(hub, "tight", tiny_dataset)
        assert hub.catalog()["campaigns"][0]["series_evicted"] > 0
        assert len(hub.store_snapshot("tight").names()) <= 4


def test_tiny_campaign_fires_alerts(tiny_dataset):
    """Backstop for the push tests: the fixture must produce alerts."""
    assert tiny_dataset.telemetry.alerts
