"""The per-job performance page renderer."""

import pytest

from repro.ops.report import (
    PAGING_RATIO_THRESHOLD,
    job_critical_path,
    render_performance_report,
)
from repro.telemetry.service import TelemetryService


@pytest.fixture(scope="module")
def table(tiny_dataset):
    service = TelemetryService.replay(
        tiny_dataset.collector.samples, tiny_dataset.accounting.records
    )
    return service.rollups


class TestRender:
    def test_sections_present(self, table, tiny_dataset):
        rollup = table.finished[0]
        text = render_performance_report(rollup, table, campaign="camp")
        for section in (
            "performance report",
            "app        :",
            "placement  :",
            "timeline   :",
            "throughput :",
            "rank       :",
            "kernel time:",
            "attribution:",
        ):
            assert section in text, section

    def test_untraced_campaign_notes_missing_attribution(self, table):
        text = render_performance_report(table.finished[0], table)
        assert "untraced campaign" in text

    def test_traced_attribution_renders_chain(self, table, tiny_dataset):
        rollup = table.finished[0]
        path = job_critical_path(tiny_dataset.tracer.spans, rollup.job_id)
        assert path is not None
        text = render_performance_report(rollup, table, path=path)
        assert "critical   :" in text and "dominant   :" in text
        assert "untraced" not in text

    def test_member_shown_for_fleet_jobs(self, table):
        text = render_performance_report(
            table.finished[0], table, campaign="fed", member="west"
        )
        assert "fed (member west)" in text

    def test_rank_counts_every_finished_job(self, table):
        text = render_performance_report(table.finished[0], table)
        assert f"of {len(table.finished)} finished jobs" in text

    def test_paging_verdict_tracks_threshold(self, table):
        rollup = table.finished[0]
        text = render_performance_report(rollup, table)
        if rollup.system_user_fxu_ratio > PAGING_RATIO_THRESHOLD:
            assert "PAGING SUSPECT" in text
        else:
            assert "healthy" in text

    def test_missing_job_path_is_none(self, tiny_dataset):
        assert job_critical_path(tiny_dataset.tracer.spans, 10**9) is None
