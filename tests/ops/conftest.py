"""Shared fixtures for the ops-service tests.

Campaigns here are deliberately tiny (2 days, 16–32 nodes): every test
in this package replays or serves them through the hub, and the suite
must stay fast.  The session-scoped fixtures run each campaign once.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy
from repro.faults.profile import FaultProfile
from repro.fleet.spec import PRESETS, FleetSpec
from repro.tracing.tracer import Tracer


def tiny_config(**overrides) -> StudyConfig:
    """Seed 5 under the pathological fault profile fires engine *and*
    fault alerts inside 2 days — the push tests need a campaign that is
    small but not quiet."""
    params = dict(
        seed=5,
        n_days=2,
        n_nodes=16,
        n_users=8,
        fault_profile=FaultProfile.named("pathological"),
    )
    params.update(overrides)
    return StudyConfig(**params)


@pytest.fixture(scope="session")
def tiny_dataset() -> StudyDataset:
    """A 2-day traced faulted campaign: jobs, spans, samples, alerts."""
    return WorkloadStudy(tiny_config(), tracer=Tracer()).run()


@pytest.fixture(scope="session")
def tiny_fleet_spec() -> FleetSpec:
    """The demo2 two-member fleet, shortened to 2 days."""
    return dataclasses.replace(PRESETS["demo2"], n_days=2)
