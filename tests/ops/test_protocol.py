"""Frame encoding, parsing, and payload shaping."""

import asyncio

import numpy as np
import pytest

from repro.ops.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    read_message,
    series_to_json,
)
from repro.telemetry.store import MetricStore


class TestFraming:
    def test_roundtrip(self):
        frame = encode_message({"op": "ping", "n": 1})
        assert frame.endswith(b"\n")
        assert decode_message(frame) == {"op": "ping", "n": 1}

    def test_compact_and_sorted(self):
        # One line, deterministic key order: diffable smoke logs.
        assert encode_message({"b": 1, "a": 2}) == b'{"a":2,"b":1}\n'

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_message(b"hello\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1,2]\n")

    def test_read_message_eof_is_none(self):
        async def body():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_message(reader)

        assert asyncio.run(body()) is None

    def test_read_message_parses_line(self):
        async def body():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message({"op": "ping"}))
            reader.feed_eof()
            return await read_message(reader)

        assert asyncio.run(body()) == {"op": "ping"}

    def test_response_helpers(self):
        assert ok_response("ping", x=1) == {"ok": True, "op": "ping", "x": 1}
        err = error_response("query", "unknown-metric", "nope")
        assert err["ok"] is False and err["error"] == "unknown-metric"


class TestSeriesPayload:
    @pytest.fixture()
    def snap(self):
        store = MetricStore()
        for i in range(10):
            store.append("m", float(i * 900), float(i))
        return store.series("m").snapshot()

    def test_summary_only_by_default(self, snap):
        payload = series_to_json(snap)
        assert payload["count"] == 10
        assert payload["dropped"] == 0
        assert payload["last"] == 9.0
        assert "times" not in payload and "values" not in payload

    def test_points_and_last_n(self, snap):
        payload = series_to_json(snap, points=True, last=3)
        assert payload["values"] == [7.0, 8.0, 9.0]
        assert payload["in_window"] == 10  # window size before the cut

    def test_window_bounds_halfopen(self, snap):
        payload = series_to_json(snap, t0=900.0, t1=2700.0, points=True)
        assert payload["values"] == [1.0, 2.0]

    def test_quantile_keys_are_json_safe(self, snap):
        assert set(series_to_json(snap)["quantiles"]) == {"p50", "p90", "p99"}

    def test_dropped_surfaced(self):
        store = MetricStore(capacity=4)
        for i in range(10):
            store.append("m", float(i), float(i))
        payload = series_to_json(store.series("m").snapshot())
        assert payload["dropped"] == 6
        assert np.array_equal(store.series("m").snapshot().values, [6, 7, 8, 9])
