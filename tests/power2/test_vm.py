"""AIX-style VM model: invariants, fault classes, analytic agreement."""

import numpy as np
import pytest

from repro.power2.config import MachineConfig
from repro.power2.node import compute_paging_state
from repro.power2.vm import FaultKind, VirtualMemory

PAGE = 4096


def small_vm(n_pages: int = 16, **kw) -> VirtualMemory:
    cfg = MachineConfig(memory_bytes=n_pages * PAGE)
    return VirtualMemory(cfg, pinned_fraction=0.0, **kw)


class TestBasics:
    def test_first_touch_is_zero_fill(self):
        vm = small_vm()
        assert vm.touch(1, 0) is FaultKind.ZERO_FILL
        assert vm.touch(1, 100) is None  # same page now resident

    def test_fits_in_memory_never_hard_faults(self):
        vm = small_vm(n_pages=32)
        for _ in range(5):
            for p in range(16):
                vm.touch(1, p * PAGE)
        assert vm.stats.hard_faults == 0
        assert vm.stats.zero_fill_faults == 16
        vm.stats.check()

    def test_frames_conserved(self):
        vm = small_vm(n_pages=8)
        for p in range(50):
            vm.touch(1, p * PAGE)
        assert vm.frames_used <= vm.n_frames
        assert vm.frames_used + vm.frames_free == vm.n_frames

    def test_resident_pages_per_process(self):
        vm = small_vm(n_pages=16)
        vm.touch(1, 0)
        vm.touch(1, PAGE)
        vm.touch(2, 0)
        assert vm.resident_pages(1) == 2
        assert vm.resident_pages(2) == 1

    def test_processes_do_not_alias_pages(self):
        vm = small_vm()
        vm.touch(1, 0, write=True)
        assert vm.touch(2, 0) is FaultKind.ZERO_FILL

    def test_invalid_pinned_fraction(self):
        with pytest.raises(ValueError):
            VirtualMemory(pinned_fraction=1.0)


class TestEvictionAndFaults:
    def test_dirty_eviction_pages_out_then_hard_faults(self):
        vm = small_vm(n_pages=4)
        # Dirty all frames, then stream far past capacity.
        for p in range(4):
            vm.touch(1, p * PAGE, write=True)
        for p in range(4, 20):
            vm.touch(1, p * PAGE)
        assert vm.stats.pageouts > 0
        # Re-touch an early dirty page: must be a hard fault.
        kind = vm.touch(1, 0)
        assert kind in (FaultKind.HARD, FaultKind.RECLAIM)
        if kind is FaultKind.HARD:
            assert vm.stats.hard_faults >= 1

    def test_clean_eviction_recall_is_reclaim(self):
        vm = small_vm(n_pages=4)
        for p in range(12):
            vm.touch(1, p * PAGE)  # clean stream
        assert vm.touch(1, 0) is FaultKind.RECLAIM

    def test_second_chance_respects_reference_bit(self):
        vm = small_vm(n_pages=3)
        vm.touch(1, 0 * PAGE)
        vm.touch(1, 1 * PAGE)
        vm.touch(1, 2 * PAGE)
        # Keep page 0 hot, then fault in a new page: 0 must survive.
        vm.touch(1, 0)
        vm.touch(1, 3 * PAGE)
        assert vm.touch(1, 0) is None

    def test_hard_fault_costs_disk_time(self):
        vm = small_vm()
        assert vm.fault_service_seconds(FaultKind.HARD) > 10 * vm.fault_service_seconds(
            FaultKind.ZERO_FILL
        )

    def test_terminate_releases_everything(self):
        vm = small_vm(n_pages=4)
        for p in range(10):
            vm.touch(1, p * PAGE, write=True)
        before = vm.frames_used
        freed = vm.terminate(1)
        assert freed == before
        assert vm.frames_used == 0
        assert vm.resident_pages(1) == 0
        assert vm.touch(1, 0) is FaultKind.ZERO_FILL  # fresh process image


class TestOversubscription:
    def _thrash(self, working_set_pages: int, n_frames: int, refs: int = 30_000):
        vm = small_vm(n_pages=n_frames)
        rng = np.random.default_rng(5)
        pages = rng.integers(0, working_set_pages, size=refs)
        writes = rng.random(refs) < 0.3
        for p, w in zip(pages, writes):
            vm.touch(1, int(p) * PAGE, write=bool(w))
        return vm

    def test_oversubscription_produces_hard_faults(self):
        vm = self._thrash(working_set_pages=64, n_frames=16)
        assert vm.stats.hard_faults > 0
        assert vm.stats.service_seconds > 0

    def test_fault_rate_grows_with_oversubscription(self):
        mild = self._thrash(working_set_pages=20, n_frames=16)
        severe = self._thrash(working_set_pages=128, n_frames=16)
        assert severe.stats.hard_fault_ratio > 2 * mild.stats.hard_fault_ratio

    def test_fits_means_no_steady_state_faults(self):
        vm = self._thrash(working_set_pages=12, n_frames=16)
        # Only the 12 first-touch zero-fills.
        assert vm.stats.faults == 12


class TestAnalyticAgreement:
    def test_stolen_fraction_same_order_as_analytic(self):
        """The campaign's analytic paging model and the trace-driven VM
        must agree on the *severity class* of an oversubscribed job:
        both sides say a 1.5x working set is time-dominated by fault
        service."""
        n_frames = 512
        cfg = MachineConfig(memory_bytes=n_frames * PAGE)
        vm = VirtualMemory(cfg, pinned_fraction=0.0)
        over = 1.5
        working = int(n_frames * over)
        rng = np.random.default_rng(9)
        refs = 200_000
        for p in np.asarray(rng.integers(0, working, size=refs)):
            vm.touch(1, int(p) * PAGE, write=True)

        # Trace side: service seconds per reference vs useful time per
        # reference (~1 memory instruction each, ~3 cycles of work).
        useful = refs * 3.0 * cfg.cycle_seconds
        trace_stolen = vm.stats.service_seconds / (
            vm.stats.service_seconds + useful
        )

        analytic = compute_paging_state(over * cfg.memory_bytes, cfg.memory_bytes, cfg)
        # Both models must agree this is a thrashing regime.
        assert trace_stolen > 0.5
        assert analytic.stolen_fraction > 0.5
