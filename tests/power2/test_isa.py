"""Instruction-mix algebra: the paper's flop-counting rules."""

import pytest

from repro.power2.isa import FlopBreakdown, InstructionMix


class TestFlopCounting:
    def test_fma_counts_twice(self):
        """§5: 'The fma operation counts as an add and a multiply'."""
        mix = InstructionMix(fp_fma=10.0)
        assert mix.flops == 20.0

    def test_singles_count_once(self):
        mix = InstructionMix(fp_add=3.0, fp_mul=4.0, fp_div=2.0, fp_sqrt=1.0)
        assert mix.flops == 10.0

    def test_misc_fp_produces_no_flops(self):
        assert InstructionMix(fp_misc=100.0).flops == 0.0

    def test_arith_vs_all_fpu_insts(self):
        mix = InstructionMix(fp_add=1.0, fp_fma=2.0, fp_misc=3.0)
        assert mix.fp_arith_insts == 3.0
        assert mix.fpu_insts == 6.0


class TestMemoryCounting:
    def test_quad_counts_as_one_instruction(self):
        """§5: 'a quad load or quad store [counts] as a single instruction'."""
        mix = InstructionMix(quad_loads=5.0, quad_stores=5.0)
        assert mix.memory_insts == 10.0

    def test_quad_moves_two_words(self):
        mix = InstructionMix(loads=4.0, quad_loads=3.0)
        assert mix.memory_words == 10.0

    def test_fxu_includes_int_ops(self):
        mix = InstructionMix(loads=2.0, int_ops=3.0)
        assert mix.fxu_insts == 5.0


class TestTotals:
    def test_total_insts_spans_units(self):
        mix = InstructionMix(
            fp_add=1.0, fp_misc=1.0, loads=1.0, int_ops=1.0, branches=1.0, cr_ops=1.0
        )
        assert mix.total_insts == 6.0

    def test_total_ops_counts_fma_and_quads_twice(self):
        mix = InstructionMix(fp_fma=2.0, quad_loads=3.0, loads=1.0)
        # insts = 2 + 3 + 1; ops adds one extra per fma and per quad.
        assert mix.total_ops == 6.0 + 2.0 + 3.0


class TestAlgebra:
    def test_scaled(self):
        mix = InstructionMix(fp_add=2.0, loads=4.0).scaled(0.5)
        assert mix.fp_add == 1.0 and mix.loads == 2.0

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            InstructionMix().scaled(-1.0)

    def test_addition(self):
        a = InstructionMix(fp_add=1.0, branches=2.0)
        b = InstructionMix(fp_add=3.0, loads=1.0)
        c = a + b
        assert (c.fp_add, c.branches, c.loads) == (4.0, 2.0, 1.0)

    def test_replace(self):
        mix = InstructionMix(fp_add=1.0).replace(fp_add=9.0)
        assert mix.fp_add == 9.0

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            InstructionMix(fp_add=-1.0).validate()

    def test_validate_rejects_nan(self):
        with pytest.raises(ValueError):
            InstructionMix(loads=float("nan")).validate()

    def test_zero(self):
        assert InstructionMix.zero().total_insts == 0.0


class TestFlopBreakdown:
    def test_fma_add_lands_in_add_row(self):
        """§5: fma multiply → fma row, fma add → add row."""
        mix = InstructionMix(fp_add=3.0, fp_mul=2.0, fp_fma=4.0)
        b = FlopBreakdown.from_mix(mix)
        assert b.add == 7.0  # 3 pure + 4 fma adds
        assert b.mul == 2.0
        assert b.fma == 4.0

    def test_total_equals_flops(self):
        mix = InstructionMix(fp_add=3.0, fp_mul=2.0, fp_div=1.0, fp_fma=4.0)
        b = FlopBreakdown.from_mix(mix)
        assert b.total == mix.flops

    def test_fma_fraction(self):
        mix = InstructionMix(fp_add=4.0, fp_fma=2.0)  # flops = 8, fma flops = 4
        assert FlopBreakdown.from_mix(mix).fma_fraction == pytest.approx(0.5)

    def test_fma_fraction_empty(self):
        assert FlopBreakdown.from_mix(InstructionMix()).fma_fraction == 0.0
