"""Node model: phases, paging physics, rate fast path."""

import pytest

from repro.power2.config import POWER2_590
from repro.power2.counters import Mode, rates_vector
from repro.power2.isa import InstructionMix
from repro.power2.node import (
    DMA_TRANSFER_BYTES,
    Node,
    PhaseKind,
    WorkPhase,
    compute_paging_state,
)
from repro.power2.pipeline import CycleModel, DependencyProfile, MemoryBehaviour


def execution(flops=1e6):
    mix = InstructionMix(fp_add=flops, loads=flops)
    return CycleModel().execute(mix, MemoryBehaviour(), DependencyProfile())


class TestMemoryManagement:
    def test_assign_and_release(self):
        n = Node(0)
        n.assign_memory(64e6)
        assert n.memory_used == 64e6
        n.release_memory(64e6)
        assert n.memory_used == 0.0

    def test_release_more_than_assigned_raises(self):
        n = Node(0)
        n.assign_memory(1e6)
        with pytest.raises(ValueError):
            n.release_memory(2e6)

    def test_negative_assign_rejected(self):
        with pytest.raises(ValueError):
            Node(0).assign_memory(-1.0)

    def test_oversubscription_allowed(self):
        """§6: demand beyond 128 MB is legal — it just pages."""
        n = Node(0)
        n.assign_memory(200 * 1024 * 1024)
        assert n.paging_state().fault_rate_per_s > 0


class TestPagingPhysics:
    def test_no_paging_within_memory(self):
        st = compute_paging_state(100e6, 128e6, POWER2_590)
        assert st.fault_rate_per_s == 0.0 and st.stolen_fraction == 0.0

    def test_paging_grows_with_oversubscription(self):
        mild = compute_paging_state(1.05 * 128e6, 128e6, POWER2_590)
        severe = compute_paging_state(1.5 * 128e6, 128e6, POWER2_590)
        assert severe.fault_rate_per_s >= mild.fault_rate_per_s > 0

    def test_fault_rate_saturates_at_disk_limit(self):
        st = compute_paging_state(10 * 128e6, 128e6, POWER2_590, fault_limit=110.0)
        assert st.fault_rate_per_s == pytest.approx(110.0)

    def test_stolen_fraction_capped(self):
        st = compute_paging_state(10 * 128e6, 128e6, POWER2_590)
        assert st.stolen_fraction <= 0.98

    def test_thrashing_flag(self):
        st = compute_paging_state(2 * 128e6, 128e6, POWER2_590)
        assert st.thrashing

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            compute_paging_state(1.0, 0.0, POWER2_590)


class TestPhases:
    def test_compute_phase_accrues_user_counters(self):
        n = Node(0)
        res = n.run_phase(WorkPhase(kind=PhaseKind.COMPUTE, execution=execution()))
        assert res.user_flops == pytest.approx(1e6)
        assert n.monitor.banks[Mode.USER].read("fpu0") > 0

    def test_compute_without_execution_raises(self):
        with pytest.raises(ValueError):
            Node(0).run_phase(WorkPhase(kind=PhaseKind.COMPUTE))

    def test_waits_tick_no_user_counters(self):
        """§5: message-passing and I/O waits are invisible to the user
        counters — the paper's central caveat."""
        n = Node(0)
        n.run_phase(WorkPhase(kind=PhaseKind.COMM_WAIT, seconds=10.0))
        assert n.monitor.banks[Mode.USER].read("fpu0") == 0
        assert n.monitor.banks[Mode.USER].read("fxu0") == 0

    def test_io_wait_generates_dma(self):
        n = Node(0)
        n.run_phase(
            WorkPhase(kind=PhaseKind.IO_WAIT, seconds=1.0, dma_read_bytes=3200.0)
        )
        assert n.monitor.banks[Mode.USER].read("dma_read") == int(
            3200.0 / DMA_TRANSFER_BYTES
        )

    def test_idle_accrues_system_background(self):
        n = Node(0)
        n.run_phase(WorkPhase(kind=PhaseKind.IDLE, seconds=100.0))
        sys_bank = n.monitor.banks[Mode.SYSTEM]
        assert sys_bank.read("fxu0") > 0
        assert sys_bank.read("cycles") > 0

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Node(0).run_phase(WorkPhase(kind=PhaseKind.IDLE, seconds=-1.0))

    def test_paging_stretches_compute_and_inflates_system_fxu(self):
        """§6's signature: oversubscribed nodes show system-mode FXU
        counts rivaling user-mode, and wall time stretches."""
        healthy, paging = Node(0), Node(1)
        paging.assign_memory(1.6 * POWER2_590.memory_bytes)
        ex = execution()
        t_healthy = healthy.run_phase(
            WorkPhase(kind=PhaseKind.COMPUTE, execution=ex)
        ).wall_seconds
        res = paging.run_phase(WorkPhase(kind=PhaseKind.COMPUTE, execution=ex))
        assert res.wall_seconds > 5 * t_healthy
        assert res.page_faults > 0
        sys_fxu = paging.monitor.banks[Mode.SYSTEM].read("fxu0")
        usr_fxu = paging.monitor.banks[Mode.USER].read("fxu0")
        # Per unit wall time, system work dominates on a thrashing node.
        assert sys_fxu > 0.5 * usr_fxu

    def test_paging_generates_dma_page_traffic(self):
        n = Node(0)
        n.assign_memory(1.6 * POWER2_590.memory_bytes)
        n.run_phase(WorkPhase(kind=PhaseKind.COMPUTE, execution=execution()))
        assert n.monitor.banks[Mode.USER].read("dma_write") > 0

    def test_utilization_tracks_busy_fraction(self):
        n = Node(0)
        n.run_phase(WorkPhase(kind=PhaseKind.COMPUTE, execution=execution()))
        n.run_phase(WorkPhase(kind=PhaseKind.IDLE, seconds=n.busy_seconds))
        assert n.utilization() == pytest.approx(0.5)


class TestRateFastPath:
    def test_sync_integrates_rates(self):
        n = Node(0)
        n.install_rates(0.0, rates_vector({"fpu0": 1e6}), busy=True)
        n.sync(10.0)
        assert n.monitor.banks[Mode.USER].read("fpu0") == 10_000_000

    def test_sync_without_rates_accrues_background(self):
        n = Node(0)
        n.sync(50.0)
        assert n.monitor.banks[Mode.SYSTEM].read("fxu0") > 0
        assert n.monitor.banks[Mode.USER].read("fxu0") == 0

    def test_sync_is_idempotent_at_same_time(self):
        n = Node(0)
        n.install_rates(0.0, rates_vector({"fpu0": 1e6}))
        n.sync(5.0)
        before = n.monitor.banks[Mode.USER].read("fpu0")
        n.sync(5.0)
        assert n.monitor.banks[Mode.USER].read("fpu0") == before

    def test_sync_backwards_rejected(self):
        n = Node(0)
        n.sync(10.0)
        with pytest.raises(ValueError):
            n.sync(5.0)

    def test_install_rates_syncs_previous_regime(self):
        n = Node(0)
        n.install_rates(0.0, rates_vector({"fpu0": 2e6}), busy=True)
        n.install_rates(10.0, rates_vector({"fpu0": 0.0}))  # job ended at t=10
        n.sync(20.0)
        assert n.monitor.banks[Mode.USER].read("fpu0") == 20_000_000

    def test_busy_seconds_follow_rate_regime(self):
        n = Node(0)
        n.install_rates(0.0, rates_vector({"fpu0": 1.0}), busy=True)
        n.sync(30.0)
        n.install_rates(30.0)  # idle
        n.sync(60.0)
        assert n.busy_seconds == pytest.approx(30.0)
        assert n.utilization() == pytest.approx(0.5)

    def test_snapshot_flat_labels(self):
        snap = Node(0).snapshot()
        assert "user.fxu0" in snap and "system.cycles" in snap
