"""Differential equivalence: scalar vs. batched counter accrual.

The vectorized backends (:mod:`repro.power2.batch`) promise *bitwise*
identical accumulators to the legacy per-node path — goldens and the
parallel runner's byte-for-byte merge invariants depend on it.  These
property tests drive all three implementations (detached scalar
:class:`Node`, numpy store, pure-python store) through identical random
schedules of rate installs, syncs, crashes/repairs, direct accruals and
phase work, and demand exact float equality at every step.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power2.batch import (
    BACKEND_CHOICES,
    HAVE_NUMPY,
    NumpyCounterStore,
    PythonCounterStore,
    make_store,
    resolve_backend,
)
from repro.power2.config import POWER2_590
from repro.power2.counters import BANK_SIZE, Mode, rates_vector
from repro.power2.node import Node
from repro.power2.pipeline import CycleModel
from repro.workload.kernels import (
    KERNELS,
    clear_kernel_cache,
    evaluate_kernel,
    kernel,
)

# ---------------------------------------------------------------------------
# Harness: one scalar node + one node attached to each store flavour
# ---------------------------------------------------------------------------


def make_trio(n_nodes=1):
    """(scalar nodes, numpy-attached nodes, python-attached nodes)."""
    scalar = [Node(i) for i in range(n_nodes)]
    np_store = NumpyCounterStore(n_nodes)
    py_store = PythonCounterStore(n_nodes)
    np_nodes, py_nodes = [], []
    for i in range(n_nodes):
        a, b = Node(i), Node(i)
        a.attach_store(np_store, i)
        b.attach_store(py_store, i)
        np_nodes.append(a)
        py_nodes.append(b)
    return scalar, np_nodes, py_nodes


def assert_bitwise_equal(reference: Node, *others: Node):
    """Exact accumulator/clock equality across implementations."""
    ref_user = np.asarray(reference.monitor.banks[Mode.USER].raw_vector())
    ref_sys = np.asarray(reference.monitor.banks[Mode.SYSTEM].raw_vector())
    for other in others:
        got_user = np.asarray(other.monitor.banks[Mode.USER].raw_vector())
        got_sys = np.asarray(other.monitor.banks[Mode.SYSTEM].raw_vector())
        # tobytes comparison is bit-exact (catches ±0.0 drift that == hides)
        assert ref_user.tobytes() == got_user.tobytes()
        assert ref_sys.tobytes() == got_sys.tobytes()
        assert reference.wall_seconds == other.wall_seconds
        assert reference.busy_seconds == other.busy_seconds
        assert reference.monitor.flat_snapshot() == other.monitor.flat_snapshot()
        ref_vec = reference.monitor.snapshot_vector()
        got_vec = np.asarray(other.monitor.snapshot_vector())
        assert np.array_equal(ref_vec, got_vec)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

rate_values = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
bank_rates = st.lists(rate_values, min_size=BANK_SIZE, max_size=BANK_SIZE)
deltas = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)

# One schedule step: advance time by dt, then perform an action.
steps = st.lists(
    st.tuples(
        deltas,
        st.sampled_from(["sync", "install", "idle", "halt", "resume", "accrue"]),
        bank_rates,
        bank_rates,
        st.booleans(),
    ),
    min_size=1,
    max_size=12,
)


def apply_step(node: Node, now: float, action: str, user, system, busy):
    if action == "sync":
        node.sync(now)
    elif action == "install":
        node.install_rates(
            now, np.asarray(user), np.asarray(system), busy=busy, flops_per_s=1.0
        )
    elif action == "idle":
        node.install_rates(now)
    elif action == "halt":
        node.halt(now)
    elif action == "resume":
        node.resume(now)
    elif action == "accrue":
        node.monitor.accrue_raw({"fxu0": user[0], "cycles": user[4]}, Mode.SYSTEM)
        node.monitor.accrue_dma(reads=system[0], writes=system[1])


class TestScheduleEquivalence:
    @given(steps)
    @settings(max_examples=120, deadline=None)
    def test_random_schedules_bitwise_identical(self, schedule):
        """Any interleaving of installs/syncs/crashes accrues identically."""
        (scalar,), (np_node,), (py_node,) = make_trio(1)
        now = 0.0
        for dt, action, user, system, busy in schedule:
            now += dt
            for node in (scalar, np_node, py_node):
                apply_step(node, now, action, user, system, busy)
            assert_bitwise_equal(scalar, np_node, py_node)

    @given(bank_rates, st.lists(deltas, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_interval_partitions_identical(self, rates, dts):
        """The *same* sync schedule accrues identically on every backend.

        (Different partitions of the same span are NOT bitwise equal —
        float addition doesn't distribute — which is exactly why the
        batched collector must skip unreachable nodes rather than sync
        them late; see test_masked_multi_node_sweeps and the collector
        regression tests in tests/hpm.)
        """
        (scalar,), (np_node,), (py_node,) = make_trio(1)
        vec = np.asarray(rates)
        now = 0.0
        for node in (scalar, np_node, py_node):
            node.install_rates(0.0, vec, busy=True)
        for dt in dts:
            now += dt
            for node in (scalar, np_node, py_node):
                node.sync(now)
            assert_bitwise_equal(scalar, np_node, py_node)

    @given(
        st.lists(bank_rates, min_size=2, max_size=4),
        st.lists(
            st.tuples(deltas, st.lists(st.booleans(), min_size=2, max_size=4)),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_masked_multi_node_sweeps(self, per_node_rates, passes):
        """store.sync_slots over a random availability mask == per-node
        scalar syncs of exactly the available nodes (fault schedules)."""
        n = len(per_node_rates)
        scalar, np_nodes, py_nodes = make_trio(n)
        np_store = np_nodes[0]._store
        py_store = py_nodes[0]._store
        for i, rates in enumerate(per_node_rates):
            vec = np.asarray(rates)
            for group in (scalar, np_nodes, py_nodes):
                group[i].install_rates(0.0, vec, busy=True)
        now = 0.0
        for dt, mask in passes:
            now += dt
            up = [i for i in range(n) if mask[i % len(mask)]]
            for i in up:
                scalar[i].sync(now)
            np_store.sync_slots(up, now)
            py_store.sync_slots(up, now)
            matrix_np = np_store.snapshot_matrix(up)
            matrix_py = py_store.snapshot_matrix(up)
            for row, i in enumerate(up):
                ref = scalar[i].monitor.snapshot_vector()
                assert np.array_equal(ref, matrix_np[row])
                assert np.array_equal(ref, np.asarray(matrix_py[row]))
            for i in range(n):
                assert_bitwise_equal(scalar[i], np_nodes[i], py_nodes[i])


class TestKernelMemoization:
    @given(
        st.sampled_from(sorted(KERNELS)),
        st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_memoized_evaluation_identical_to_direct(self, name, flops):
        """evaluate_kernel returns exactly what the uncached model does,
        over random instruction mixes (kernel × flop count)."""
        spec = kernel(name)
        clear_kernel_cache()
        cached = evaluate_kernel(spec, flops, POWER2_590)
        model = CycleModel(POWER2_590)
        direct = model.execute(
            spec.mix_for_flops(flops), spec.memory_behaviour(POWER2_590), spec.deps
        )
        assert cached == direct
        # Second call: same frozen object, no recomputation.
        assert evaluate_kernel(spec, flops, POWER2_590) is cached

    def test_jittered_specs_cache_separately(self):
        spec = kernel("cfd_multiblock")
        other = spec.with_(fma_flop_fraction=spec.fma_flop_fraction + 0.01)
        clear_kernel_cache()
        a = evaluate_kernel(spec, 1e9, POWER2_590)
        b = evaluate_kernel(other, 1e9, POWER2_590)
        assert a != b
        assert evaluate_kernel.cache_info().currsize == 2


class TestBackendSelection:
    def test_resolve_backend_names(self):
        assert resolve_backend(None) in ("numpy", "python")
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend("python") == "python"
        if HAVE_NUMPY:
            assert resolve_backend("auto") == "numpy"
            assert resolve_backend("vectorized") == "numpy"
            assert resolve_backend("numpy") == "numpy"
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    def test_choices_cover_cli_surface(self):
        assert set(BACKEND_CHOICES) == {"auto", "scalar", "vectorized", "numpy", "python"}

    def test_make_store_flavours(self):
        assert isinstance(make_store(4, "python"), PythonCounterStore)
        if HAVE_NUMPY:
            assert isinstance(make_store(4, "numpy"), NumpyCounterStore)
        with pytest.raises(ValueError):
            make_store(4, "scalar")


class TestStoreSemantics:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_backwards_sync_rejected(self, backend):
        store = make_store(2, backend)
        store.configure_slot(0, [0.0] * BANK_SIZE)
        store.sync_one(0, 100.0)
        with pytest.raises(ValueError):
            store.sync_one(0, 50.0)
        with pytest.raises(ValueError):
            store.sync_slots([0], 50.0)

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_negative_accrual_rejected(self, backend):
        store = make_store(1, backend)
        store.configure_slot(0, [0.0] * BANK_SIZE)
        with pytest.raises(ValueError):
            store.add(0, Mode.USER, "fpu0", -1.0)

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_broken_divide_counters_read_zero(self, backend):
        node = Node(0)
        node.attach_store(make_store(1, backend), 0)
        node.install_rates(0.0, rates_vector({"fpu0_fp_div": 1e6, "fpu0": 1e6}))
        node.sync(100.0)
        assert node.monitor.banks[Mode.USER].read("fpu0_fp_div") == 0
        assert node.monitor.banks[Mode.USER].raw("fpu0_fp_div") == 1e8
        assert node.monitor.banks[Mode.USER].read("fpu0") == 10**8

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_zero_length_interval_is_bitwise_noop(self, backend):
        """Syncing twice at the same instant must not perturb a single
        bit (the batched sweep applies dt=0 unconditionally where the
        scalar path early-returns; ``x + rate*0.0`` is the identity for
        the non-negative accumulators)."""
        node = Node(0)
        node.attach_store(make_store(1, backend), 0)
        node.install_rates(0.0, rates_vector({"fpu0": 1.0 / 3.0}), busy=True)
        node.sync(123.456)
        before = bytes(
            np.asarray(node.monitor.banks[Mode.USER].raw_vector()).tobytes()
        )
        wall = node.wall_seconds
        node.sync(123.456)
        node._store.sync_slots([0], 123.456)
        after = bytes(np.asarray(node.monitor.banks[Mode.USER].raw_vector()).tobytes())
        assert after == before
        assert node.wall_seconds == wall

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_hardware_read_wraps_32bit_like_scalar(self, backend):
        """Counter saturation: the physical registers are 32-bit and the
        store's hardware view must wrap exactly like the scalar bank."""
        scalar = Node(0)
        attached = Node(0)
        attached.attach_store(make_store(1, backend), 0)
        vec = rates_vector({"cycles": 66.7e6, "fpu0": 1e6})
        for n in (scalar, attached):
            n.install_rates(0.0, vec, busy=True)
            n.sync(100.0)  # cycles accrue 6.67e9 > 2**32: wraps
        ref = scalar.monitor.banks[Mode.USER]
        got = attached.monitor.banks[Mode.USER]
        assert ref.raw("cycles") > 2**32
        assert ref.hardware_read("cycles") == got.hardware_read("cycles")
        assert got.hardware_read("cycles") == int(ref.raw("cycles")) % 2**32
        assert ref.hardware_read("fpu0") == got.hardware_read("fpu0")

    def test_attach_requires_pristine_node(self):
        node = Node(0)
        node.sync(10.0)
        with pytest.raises(RuntimeError):
            node.attach_store(make_store(1, "python"), 0)

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_counter_freeze_across_crash(self, backend):
        """halt/resume freezes counters exactly like the scalar node."""
        scalar = Node(0)
        attached = Node(0)
        attached.attach_store(make_store(1, backend), 0)
        vec = rates_vector({"fpu0_fp_add": 1e6, "cycles": 3e7})
        for n in (scalar, attached):
            n.install_rates(0.0, vec, busy=True)
            n.sync(50.0)
            n.halt(60.0)
            n.sync(200.0)  # outage: frozen
            n.resume(250.0)
            n.sync(300.0)  # idle background only
        assert_bitwise_equal(scalar, attached)
