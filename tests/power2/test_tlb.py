"""Reference TLB simulator."""

import numpy as np
import pytest

from repro.power2.config import POWER2_590, TLBGeometry
from repro.power2.tlb import TLB


class TestBasics:
    def test_first_touch_misses_then_hits(self):
        t = TLB()
        assert t.access(0) is False
        assert t.access(4095) is True  # same page
        assert t.access(4096) is False  # next page

    def test_stats(self):
        t = TLB()
        for a in (0, 100, 5000, 0):
            t.access(a)
        assert t.stats.accesses == 4
        assert t.stats.hits + t.stats.misses == 4

    def test_flush_invalidates(self):
        t = TLB()
        t.access(0)
        t.flush()
        assert t.access(0) is False

    def test_reset_stats(self):
        t = TLB()
        t.access(0)
        t.reset_stats()
        assert t.stats.accesses == 0


class TestCapacity:
    def test_512_pages_fit(self):
        """§2: 512 TLB entries — a 2 MB working set translates without
        misses after the first touch."""
        t = TLB()
        pages = np.arange(512) * 4096
        for p in pages:
            t.access(int(p))
        t.reset_stats()
        for p in pages:
            assert t.access(int(p)) is True

    def test_working_set_beyond_capacity_thrashes(self):
        t = TLB(TLBGeometry(entries=8, associativity=2))
        pages = np.arange(64) * 4096
        for _ in range(3):
            for p in pages:
                t.access(int(p))
        # Far more pages than entries: virtually everything misses.
        assert t.stats.miss_ratio > 0.9


class TestPaperAnchors:
    def test_sequential_miss_every_512_elements(self):
        """§5: 'a TLB miss every 512 elements' for real*8 on 4 kB pages."""
        assert TLB.sequential_miss_ratio(POWER2_590.tlb) == pytest.approx(1.0 / 512.0)

    def test_sequential_simulation_matches_analytic(self):
        t = TLB()
        stats = t.run(np.arange(0, 512 * 4096, 8))
        assert stats.miss_ratio == pytest.approx(1.0 / 512.0, rel=0.01)

    def test_large_stride_raises_miss_rate(self):
        """§5: 'We might expect high TLB miss rates from programs
        accessing data with large memory strides.'"""
        small = TLB.strided_miss_ratio(POWER2_590.tlb, 8)
        large = TLB.strided_miss_ratio(POWER2_590.tlb, 2048)
        assert large > 100 * small

    def test_page_stride_saturates(self):
        assert TLB.strided_miss_ratio(POWER2_590.tlb, 4096) == 1.0

    def test_nonpositive_stride_rejected(self):
        with pytest.raises(ValueError):
            TLB.strided_miss_ratio(POWER2_590.tlb, -8)


class TestEdgeCases:
    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ValueError):
            TLB(TLBGeometry(page_bytes=3000))

    def test_empty_run_is_zero_length_interval(self):
        stats = TLB().run(np.array([], dtype=np.int64))
        assert (stats.accesses, stats.hits, stats.misses) == (0, 0, 0)
        assert stats.miss_ratio == 0.0

    def test_lru_evicts_least_recently_used_way(self):
        # One set, two ways: touching A keeps it resident while C
        # evicts B, the older translation.
        t = TLB(TLBGeometry(entries=2, associativity=2))
        a, b, c = 0, 4096, 8192
        assert t.access(a) is False
        assert t.access(b) is False
        assert t.access(a) is True  # refresh A
        assert t.access(c) is False  # evicts B
        assert t.access(a) is True
        assert t.access(b) is False  # B was the victim

    def test_flush_mid_stream_restarts_cold(self):
        t = TLB()
        t.run(np.arange(0, 16 * 4096, 4096))
        t.flush()
        t.reset_stats()
        stats = t.run(np.arange(0, 16 * 4096, 4096))
        assert stats.misses == 16

    def test_sequential_ratio_scales_with_element_size(self):
        g = POWER2_590.tlb
        assert TLB.sequential_miss_ratio(g, 16) == pytest.approx(2.0 / 512.0)

    def test_sub_element_stride_floors_at_element_size(self):
        g = POWER2_590.tlb
        assert TLB.strided_miss_ratio(g, 1) == TLB.strided_miss_ratio(g, 8)
