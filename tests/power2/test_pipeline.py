"""Cycle model: anchors, monotonicity, stall accounting."""

import pytest

from repro.power2.config import POWER2_590
from repro.power2.isa import InstructionMix
from repro.power2.pipeline import CycleModel, DependencyProfile, MemoryBehaviour
from repro.workload.kernels import kernel


def run(mix, mem=None, deps=None):
    return CycleModel().execute(
        mix, mem or MemoryBehaviour(), deps or DependencyProfile()
    )


class TestAnchors:
    def test_matmul_near_240_mflops(self):
        """§5: the blocked matmul runs at ≈240 Mflops."""
        k = kernel("matmul_blocked")
        r = CycleModel().execute(k.mix_for_flops(1e7), k.memory_behaviour(), k.deps)
        assert 200.0 <= r.mflops <= 267.0

    def test_cfd_mix_in_workload_band(self):
        """The workload CFD kernel runs at ≈25–35 Mflops flat out, which
        with §5's waits lands jobs in the measured 15–25 band."""
        k = kernel("cfd_multiblock")
        r = CycleModel().execute(k.mix_for_flops(1e7), k.memory_behaviour(), k.deps)
        assert 22.0 <= r.mflops <= 38.0

    def test_npb_bt_near_44(self):
        """Table 4: 44 Mflops/CPU for BT."""
        k = kernel("npb_bt")
        r = CycleModel().execute(k.mix_for_flops(1e7), k.memory_behaviour(), k.deps)
        assert 38.0 <= r.mflops <= 50.0

    def test_nothing_exceeds_peak(self):
        for name in ("matmul_blocked", "cfd_multiblock", "spectral_em", "npb_bt"):
            k = kernel(name)
            r = CycleModel().execute(k.mix_for_flops(1e6), k.memory_behaviour(), k.deps)
            assert r.mflops < POWER2_590.peak_mflops

    def test_delay_per_memory_instruction_near_paper(self):
        """§5: ≈0.12 cycles of miss delay per memory instruction."""
        k = kernel("cfd_multiblock")
        model = CycleModel()
        r = model.execute(k.mix_for_flops(1e6), k.memory_behaviour(), k.deps)
        assert 0.06 <= model.delay_per_memory_instruction(r) <= 0.25


class TestMonotonicity:
    def test_more_ilp_is_faster(self):
        mix = kernel("cfd_multiblock").mix_for_flops(1e6)
        slow = run(mix, deps=DependencyProfile(ilp=0.3))
        fast = run(mix, deps=DependencyProfile(ilp=0.95))
        assert fast.seconds < slow.seconds

    def test_more_misses_is_slower(self):
        mix = kernel("cfd_multiblock").mix_for_flops(1e6)
        clean = run(mix, mem=MemoryBehaviour(dcache_miss_ratio=0.0))
        dirty = run(mix, mem=MemoryBehaviour(dcache_miss_ratio=0.05))
        assert dirty.seconds > clean.seconds

    def test_tlb_misses_cost_more_than_cache_misses(self):
        mix = kernel("cfd_multiblock").mix_for_flops(1e6)
        cache = run(mix, mem=MemoryBehaviour(dcache_miss_ratio=0.01))
        tlb = run(mix, mem=MemoryBehaviour(tlb_miss_ratio=0.01))
        assert tlb.memory_stall_cycles > cache.memory_stall_cycles

    def test_divides_cost_multicycle(self):
        base = InstructionMix(fp_add=1e6)
        divs = InstructionMix(fp_div=1e6)
        assert run(divs).cycles > 5 * run(base).cycles


class TestAccounting:
    def test_cycle_breakdown_sums(self):
        k = kernel("cfd_multiblock")
        r = run(k.mix_for_flops(1e6), mem=k.memory_behaviour(), deps=k.deps)
        assert r.cycles == pytest.approx(
            r.issue_cycles + r.dependency_stall_cycles + r.memory_stall_cycles
        )

    def test_seconds_consistent_with_cycles(self):
        r = run(InstructionMix(fp_add=1e6))
        assert r.seconds == pytest.approx(r.cycles / POWER2_590.clock_hz)

    def test_miss_counts_proportional_to_memory_insts(self):
        mem = MemoryBehaviour(dcache_miss_ratio=0.02, tlb_miss_ratio=0.001)
        r = run(InstructionMix(loads=1e6), mem=mem)
        assert r.dcache_misses == pytest.approx(2e4)
        assert r.tlb_misses == pytest.approx(1e3)

    def test_writebacks_fraction_of_reloads(self):
        mem = MemoryBehaviour(dcache_miss_ratio=0.02, writeback_fraction=0.5)
        r = run(InstructionMix(loads=1e6), mem=mem)
        assert r.dcache_writebacks == pytest.approx(0.5 * r.dcache_reloads)

    def test_empty_mix_is_free(self):
        r = run(InstructionMix())
        assert r.cycles == 0.0 and r.mflops == 0.0 and r.cpi == 0.0

    def test_flops_per_cycle_bounded_by_peak(self):
        r = run(InstructionMix(fp_fma=1e6), deps=DependencyProfile(ilp=1.0, load_use_fraction=0.0))
        assert r.flops_per_cycle <= POWER2_590.peak_flops_per_cycle + 1e-9


class TestValidation:
    def test_invalid_memory_behaviour(self):
        with pytest.raises(ValueError):
            run(InstructionMix(), mem=MemoryBehaviour(dcache_miss_ratio=1.5))

    def test_invalid_dependency_profile(self):
        with pytest.raises(ValueError):
            run(InstructionMix(), deps=DependencyProfile(ilp=-0.1))

    def test_invalid_mix(self):
        with pytest.raises(ValueError):
            run(InstructionMix(fp_add=-5.0))
