"""Address-stream generators and analytic-vs-simulated validation."""

import numpy as np
import pytest

from repro.power2.config import POWER2_590
from repro.power2.dcache import SetAssociativeCache
from repro.power2.streams import (
    blocked_stream,
    measure_stream,
    multiblock_stream,
    random_stream,
    sequential_stream,
    strided_stream,
)
from repro.power2.tlb import TLB
from repro.util.rng import RngStreams


def rng():
    return RngStreams(3).get("streams")


class TestGenerators:
    def test_sequential_shape(self):
        s = sequential_stream(10, element_bytes=8, base=100)
        np.testing.assert_array_equal(s, 100 + np.arange(10) * 8)

    def test_strided(self):
        s = strided_stream(5, 4096)
        assert s[1] - s[0] == 4096

    def test_blocked_revisits_blocks(self):
        s = blocked_stream(2, 64, 3, element_bytes=8)
        assert s.size == 2 * 3 * 8
        # First three walks are the same block.
        np.testing.assert_array_equal(s[:8], s[8:16])

    def test_multiblock_within_span(self):
        s = multiblock_stream(rng(), n_blocks=4, block_bytes=4096, touches=20)
        assert s.min() >= 0
        assert s.max() < 4 * 4096

    def test_random_within_span(self):
        s = random_stream(rng(), 100, 1 << 16)
        assert s.min() >= 0 and s.max() < (1 << 16)

    @pytest.mark.parametrize(
        "fn,args",
        [
            (sequential_stream, (0,)),
            (strided_stream, (10, 0)),
            (blocked_stream, (0, 64, 1)),
            (random_stream, (rng(), 0, 64)),
        ],
    )
    def test_invalid_parameters_rejected(self, fn, args):
        with pytest.raises(ValueError):
            fn(*args)


class TestValidation:
    """The campaign's analytic miss ratios vs the reference simulators."""

    def test_sequential_prediction_holds(self):
        stream = sequential_stream(200_000)
        m = measure_stream(stream)
        predicted_d = SetAssociativeCache.sequential_miss_ratio(POWER2_590.dcache)
        predicted_t = TLB.sequential_miss_ratio(POWER2_590.tlb)
        assert m.matches(predicted_d, predicted_t)

    @pytest.mark.parametrize("stride", [16, 64, 512, 4096])
    def test_strided_prediction_holds(self, stride):
        stream = strided_stream(60_000, stride)
        m = measure_stream(stream)
        predicted_d = SetAssociativeCache.strided_miss_ratio(POWER2_590.dcache, stride)
        predicted_t = TLB.strided_miss_ratio(POWER2_590.tlb, stride)
        assert m.matches(predicted_d, predicted_t)

    def test_blocked_reuse_slashes_miss_ratio(self):
        """Tiling below cache capacity: reuse factor ≈ passes."""
        flat = measure_stream(sequential_stream(96_000))
        tiled = measure_stream(
            blocked_stream(n_blocks=6, block_bytes=128 * 1024, passes_per_block=8)
        )
        assert tiled.dcache_miss_ratio < 0.2 * flat.dcache_miss_ratio

    def test_multiblock_tlb_hostility(self):
        """Block-hopping hurts the TLB far more than the cache — the
        mechanism behind the workload's tlb_locality_factor."""
        hopping = measure_stream(
            multiblock_stream(
                rng(), n_blocks=2048, block_bytes=64 * 1024, touches=3000, run_length=32
            )
        )
        ratio = hopping.tlb_miss_ratio / max(hopping.dcache_miss_ratio, 1e-9)
        # A pure sequential walk has tlb/dcache = 256/4096 = 1/16; block
        # hopping pushes the ratio up by an order of magnitude.
        assert ratio > 4.0 * (256 / 4096)

    def test_random_stream_thrashes(self):
        m = measure_stream(random_stream(rng(), 50_000, 64 << 20))
        assert m.dcache_miss_ratio > 0.9
        assert m.tlb_miss_ratio > 0.9

    def test_write_fraction_generates_writebacks(self):
        stream = strided_stream(30_000, 256)  # every access a new line
        clean = measure_stream(stream)
        dirty = measure_stream(stream, write_fraction=1.0)
        assert clean.dcache_stats.writebacks == 0
        assert dirty.dcache_stats.writebacks > 0
