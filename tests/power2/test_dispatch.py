"""Dual-unit dispatch: the §5 asymmetry mechanisms."""

import pytest

from repro.power2.dispatch import DispatchModel
from repro.power2.isa import InstructionMix


class TestFPUSplit:
    def test_paper_ratio_at_default_ilp(self):
        """ilp = 0.74 reproduces the measured FPU0:FPU1 ≈ 1.7."""
        dm = DispatchModel(ilp=0.74)
        d = dm.split(InstructionMix(fp_add=60.0, fp_mul=20.0, fp_fma=20.0))
        assert d.fpu_ratio == pytest.approx(1.7, rel=0.02)

    def test_full_ilp_balances_units(self):
        dm = DispatchModel(ilp=1.0)
        d = dm.split(InstructionMix(fp_add=100.0))
        assert d.fpu_ratio == pytest.approx(1.0)

    def test_zero_ilp_starves_fpu1(self):
        dm = DispatchModel(ilp=0.0)
        d = dm.split(InstructionMix(fp_add=100.0))
        assert d.fpu1 == 0.0
        assert d.fpu_ratio == float("inf")

    def test_ilp_for_fpu_ratio_inverts_split(self):
        for ratio in (1.0, 1.5, 1.7, 3.0):
            ilp = DispatchModel.ilp_for_fpu_ratio(ratio)
            d = DispatchModel(ilp=ilp).split(InstructionMix(fp_add=1000.0))
            assert d.fpu_ratio == pytest.approx(ratio, rel=1e-6)

    def test_ratio_below_one_rejected(self):
        with pytest.raises(ValueError):
            DispatchModel.ilp_for_fpu_ratio(0.9)

    def test_multicycle_ops_prefer_fpu1(self):
        """§5: divides/square roots are what spill work to FPU1."""
        dm = DispatchModel(ilp=0.5)
        d = dm.split(InstructionMix(fp_div=100.0))
        assert d.fpu1_div > d.fpu0_div

    def test_per_unit_breakdown_sums_to_category_totals(self):
        mix = InstructionMix(fp_add=10.0, fp_mul=7.0, fp_div=2.0, fp_fma=5.0)
        d = DispatchModel(ilp=0.6).split(mix)
        assert d.fpu0_add + d.fpu1_add == pytest.approx(mix.fp_add)
        assert d.fpu0_mul + d.fpu1_mul == pytest.approx(mix.fp_mul)
        assert d.fpu0_div + d.fpu1_div == pytest.approx(mix.fp_div + mix.fp_sqrt)
        assert d.fpu0_fma + d.fpu1_fma == pytest.approx(mix.fp_fma)

    def test_fp_misc_split_between_units(self):
        mix = InstructionMix(fp_misc=100.0)
        d = DispatchModel(ilp=0.74).split(mix)
        assert d.fpu0 + d.fpu1 == pytest.approx(100.0)


class TestFXUSplit:
    def test_memory_insts_interleave_evenly(self):
        d = DispatchModel().split(InstructionMix(loads=60.0, stores=40.0))
        assert d.fxu0 == pytest.approx(d.fxu1)

    def test_address_arithmetic_biases_fxu1(self):
        """§5: FXU1 solely performs address multiply/divide."""
        d = DispatchModel(fxu1_address_share=0.85).split(
            InstructionMix(loads=100.0, int_ops=40.0)
        )
        assert d.fxu1 > d.fxu0

    def test_miss_handling_biases_fxu0(self):
        """§5: FXU0 has the additional cache-miss duty."""
        dm = DispatchModel()
        d = dm.split(InstructionMix(loads=100.0), dcache_miss_handling=30.0)
        assert d.fxu0 > d.fxu1

    def test_fxu_total_conserved(self):
        mix = InstructionMix(loads=50.0, stores=30.0, quad_loads=10.0, int_ops=20.0)
        d = DispatchModel().split(mix)
        assert d.fxu_total == pytest.approx(mix.fxu_insts)


class TestICU:
    def test_branches_are_type1(self):
        d = DispatchModel().split(InstructionMix(branches=30.0, cr_ops=7.0))
        assert d.icu_type1 == 30.0
        assert d.icu_type2 == 7.0


class TestValidation:
    def test_ilp_out_of_range(self):
        with pytest.raises(ValueError):
            DispatchModel(ilp=1.5)

    def test_fxu1_share_out_of_range(self):
        with pytest.raises(ValueError):
            DispatchModel(fxu1_address_share=-0.1)


class TestEdgeCases:
    def test_empty_mix_dispatches_nothing(self):
        """Zero-length work: every unit count is exactly zero."""
        d = DispatchModel().split(InstructionMix())
        for field in ("fpu0", "fpu1", "fxu0", "fxu1", "icu_type1", "icu_type2"):
            assert getattr(d, field) == 0.0
        assert d.fxu_total == 0.0
        assert d.fpu_ratio == float("inf")

    def test_boundary_parameters_accepted(self):
        DispatchModel(ilp=0.0, fxu1_address_share=0.0)
        DispatchModel(ilp=1.0, fxu1_address_share=1.0)

    def test_ratio_one_needs_full_ilp(self):
        assert DispatchModel.ilp_for_fpu_ratio(1.0) == pytest.approx(1.0)

    def test_zero_ilp_still_spills_half_the_divides(self):
        """Multicycle ops spill even with no ILP: the queue stalls on
        the long op either way, so the 0.5 floor applies."""
        d = DispatchModel(ilp=0.0).split(InstructionMix(fp_div=100.0))
        assert d.fpu1_div == pytest.approx(50.0)
        assert d.fpu0_div == pytest.approx(50.0)

    def test_quad_memory_insts_conserved_across_fxus(self):
        mix = InstructionMix(quad_loads=40.0, quad_stores=20.0)
        d = DispatchModel().split(mix)
        assert d.fxu_total == pytest.approx(mix.fxu_insts)
        assert d.fxu0 == pytest.approx(d.fxu1)

    def test_sqrt_folded_into_divide_accounting(self):
        d = DispatchModel(ilp=0.5).split(InstructionMix(fp_sqrt=10.0))
        assert d.fpu0_div + d.fpu1_div == pytest.approx(10.0)
