"""Machine constants: geometry invariants and paper values."""

import pytest

from repro.power2.config import (
    POWER2_590,
    SP2_SWITCH,
    CacheGeometry,
    MachineConfig,
    TLBGeometry,
)


class TestDcacheGeometry:
    def test_paper_geometry(self):
        """§2: 256 kB, 4-way, 1024 lines of 256 bytes."""
        g = POWER2_590.dcache
        assert g.total_bytes == 256 * 1024
        assert g.line_bytes == 256
        assert g.associativity == 4
        assert g.n_lines == 1024
        assert g.n_sets == 256

    def test_size_must_divide_by_line(self):
        with pytest.raises(ValueError):
            CacheGeometry(total_bytes=1000, line_bytes=256)

    def test_lines_must_divide_by_assoc(self):
        with pytest.raises(ValueError):
            CacheGeometry(total_bytes=1024, line_bytes=256, associativity=3)


class TestTLBGeometry:
    def test_paper_geometry(self):
        """§2: 512 entries, 4096-byte pages."""
        g = POWER2_590.tlb
        assert g.entries == 512
        assert g.page_bytes == 4096

    def test_entries_must_divide_by_assoc(self):
        with pytest.raises(ValueError):
            TLBGeometry(entries=511, associativity=2)


class TestMachineConfig:
    def test_peak_mflops_is_267(self):
        """§2: 66.7 MHz × 4 flops/cycle ≈ 267 Mflops."""
        assert POWER2_590.peak_mflops == pytest.approx(266.8, abs=0.5)

    def test_cycle_time(self):
        assert POWER2_590.cycle_seconds == pytest.approx(1.0 / 66.7e6)

    def test_miss_penalties_match_paper(self):
        """§5: 8-cycle cache miss; TLB miss 36-54 cycles (we use 45)."""
        assert POWER2_590.dcache_miss_cycles == 8.0
        assert 36.0 <= POWER2_590.tlb_miss_cycles <= 54.0

    def test_multicycle_ops(self):
        """§5: 10-cycle divide, 15-cycle square root."""
        assert POWER2_590.fp_div_cycles == 10.0
        assert POWER2_590.fp_sqrt_cycles == 15.0

    def test_node_memory_is_128mb(self):
        assert POWER2_590.memory_bytes == 128 * 1024 * 1024

    def test_config_is_frozen(self):
        with pytest.raises(AttributeError):
            POWER2_590.clock_hz = 1e9  # type: ignore[misc]

    def test_custom_config_independent(self):
        fast = MachineConfig(clock_hz=133.4e6)
        assert fast.peak_mflops == pytest.approx(2 * POWER2_590.peak_mflops)


class TestSwitchConfig:
    def test_paper_values(self):
        """§2: ≈45 µs latency, 34 MB/s."""
        assert SP2_SWITCH.latency_seconds == pytest.approx(45e-6)
        assert SP2_SWITCH.bandwidth_bytes_per_s == pytest.approx(34e6)
