"""The 22-counter hardware monitor: layout, modes, wrap, broken divide."""

import numpy as np
import pytest

from repro.power2.counters import (
    BANK_SIZE,
    BROKEN_COUNTERS,
    COUNTER_LAYOUT,
    COUNTER_MODULUS,
    COUNTER_NAMES,
    FLAT_NAMES,
    CounterBank,
    HardwareMonitor,
    Mode,
    counter_index,
    execution_event_counts,
    rates_vector,
    snapshot_delta,
    wrapped_delta,
)
from repro.power2.isa import InstructionMix
from repro.power2.pipeline import CycleModel, DependencyProfile, MemoryBehaviour


def some_execution():
    mix = InstructionMix(
        fp_add=100.0, fp_mul=50.0, fp_div=5.0, fp_fma=80.0, fp_misc=10.0,
        loads=300.0, stores=100.0, int_ops=30.0, branches=60.0, cr_ops=10.0,
    )
    return CycleModel().execute(
        mix, MemoryBehaviour(dcache_miss_ratio=0.01, tlb_miss_ratio=0.001),
        DependencyProfile(),
    )


class TestLayout:
    def test_22_counters(self):
        """§3: 22 counters — 5 each for FXU/FPU0/FPU1/SCU, 2 for ICU."""
        assert BANK_SIZE == 22
        groups = {}
        for spec in COUNTER_LAYOUT:
            groups.setdefault(spec.group, []).append(spec.slot)
        assert sorted(groups["FXU"]) == [0, 1, 2, 3, 4]
        assert sorted(groups["FPU0"]) == [0, 1, 2, 3, 4]
        assert sorted(groups["FPU1"]) == [0, 1, 2, 3, 4]
        assert sorted(groups["ICU"]) == [0, 1]
        assert sorted(groups["SCU"]) == [0, 1, 2, 3, 4]

    def test_counter_index_roundtrip(self):
        for i, name in enumerate(COUNTER_NAMES):
            assert counter_index(name) == i

    def test_unknown_counter_raises(self):
        with pytest.raises(KeyError):
            counter_index("nonexistent")

    def test_flat_names_cover_both_modes(self):
        assert len(FLAT_NAMES) == 2 * BANK_SIZE
        assert FLAT_NAMES[0].startswith("user.")
        assert FLAT_NAMES[BANK_SIZE].startswith("system.")


class TestCounterBank:
    def test_add_and_read(self):
        b = CounterBank()
        b.add("fxu0", 100.0)
        assert b.read("fxu0") == 100

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            CounterBank().add("fxu0", -1.0)

    def test_broken_divide_counters_read_zero(self):
        """§3: the divide counters never report."""
        b = CounterBank()
        b.add("fpu0_fp_div", 1000.0)
        b.add("fpu1_fp_div", 1000.0)
        assert b.read("fpu0_fp_div") == 0
        assert b.read("fpu1_fp_div") == 0
        # The events did occur (ground truth keeps them).
        assert b.raw("fpu0_fp_div") == 1000.0

    def test_hardware_read_wraps_32bit(self):
        b = CounterBank()
        b.add("cycles", float(COUNTER_MODULUS + 5))
        assert b.hardware_read("cycles") == 5
        # The software (accumulated) counter does not wrap.
        assert b.read("cycles") == COUNTER_MODULUS + 5

    def test_snapshot_vector_matches_snapshot(self):
        b = CounterBank()
        b.add("fxu0", 7.0)
        b.add("fpu0_fp_div", 3.0)  # broken: must be zero in both
        vec = b.snapshot_vector()
        snap = b.snapshot()
        for i, name in enumerate(COUNTER_NAMES):
            assert vec[i] == snap[name]

    def test_add_vector(self):
        b = CounterBank()
        vec = rates_vector({"fxu0": 2.0, "cycles": 10.0})
        b.add_vector(vec * 3.0)
        assert b.read("fxu0") == 6 and b.read("cycles") == 30

    def test_add_vector_shape_checked(self):
        with pytest.raises(ValueError):
            CounterBank().add_vector(np.zeros(5))

    def test_reset(self):
        b = CounterBank()
        b.add("fxu0", 5.0)
        b.reset()
        assert b.read("fxu0") == 0


class TestDeltas:
    def test_wrapped_delta_no_wrap(self):
        assert wrapped_delta(10, 300) == 290

    def test_wrapped_delta_across_wrap(self):
        assert wrapped_delta(COUNTER_MODULUS - 10, 5) == 15

    def test_wrapped_delta_range_check(self):
        with pytest.raises(ValueError):
            wrapped_delta(-1, 5)
        with pytest.raises(ValueError):
            wrapped_delta(0, COUNTER_MODULUS)

    def test_snapshot_delta(self):
        before = {"a": 5, "b": 10}
        after = {"a": 8, "b": 10}
        assert snapshot_delta(before, after) == {"a": 3, "b": 0}

    def test_snapshot_delta_key_mismatch(self):
        with pytest.raises(ValueError):
            snapshot_delta({"a": 1}, {"b": 1})

    def test_snapshot_delta_backwards_counter(self):
        with pytest.raises(ValueError):
            snapshot_delta({"a": 10}, {"a": 5})


class TestHardwareMonitor:
    def test_accrue_routes_by_mode(self):
        m = HardwareMonitor()
        r = some_execution()
        m.accrue(r, Mode.USER)
        assert m.banks[Mode.USER].read("fxu0") > 0
        assert m.banks[Mode.SYSTEM].read("fxu0") == 0

    def test_event_counts_complete(self):
        counts = execution_event_counts(some_execution())
        # Every CPU-side counter is covered (DMA comes from elsewhere).
        assert set(counts) == set(COUNTER_NAMES) - {"dma_read", "dma_write"}

    def test_event_counts_conserve_instructions(self):
        r = some_execution()
        counts = execution_event_counts(r)
        per_unit = (
            counts["fxu0"] + counts["fxu1"] - r.dcache_misses  # miss handling extra
            + counts["fpu0"] + counts["fpu1"]
            + counts["icu0"] + counts["icu1"]
        )
        assert per_unit == pytest.approx(r.mix.total_insts)

    def test_flop_algebra_from_counters(self):
        """Flops recovered from counters == mix flops minus the divides
        the broken counter hides."""
        m = HardwareMonitor()
        r = some_execution()
        m.accrue(r, Mode.USER)
        b = m.banks[Mode.USER]
        measured = (
            b.raw("fpu0_fp_add") + b.raw("fpu1_fp_add")
            + b.raw("fpu0_fp_mul") + b.raw("fpu1_fp_mul")
            + 2 * (b.raw("fpu0_fp_muladd") + b.raw("fpu1_fp_muladd"))
        )
        true_flops = r.mix.flops
        hidden_divides = r.mix.fp_div + r.mix.fp_sqrt
        assert measured == pytest.approx(true_flops - hidden_divides)

    def test_accrue_dma(self):
        m = HardwareMonitor()
        m.accrue_dma(reads=10.0, writes=20.0)
        assert m.banks[Mode.USER].read("dma_read") == 10
        assert m.banks[Mode.USER].read("dma_write") == 20

    def test_flat_snapshot_shape(self):
        snap = HardwareMonitor().flat_snapshot()
        assert set(snap) == set(FLAT_NAMES)

    def test_snapshot_vector_order(self):
        m = HardwareMonitor()
        m.accrue_raw({"fxu0": 3.0}, Mode.SYSTEM)
        vec = m.snapshot_vector()
        assert vec[BANK_SIZE + counter_index("fxu0")] == 3
        assert vec[counter_index("fxu0")] == 0

    def test_reset(self):
        m = HardwareMonitor()
        m.accrue_raw({"fxu0": 3.0}, Mode.USER)
        m.reset()
        assert m.banks[Mode.USER].read("fxu0") == 0


class TestRatesVector:
    def test_rates_vector_placement(self):
        v = rates_vector({"tlb_mis": 4.0})
        assert v[counter_index("tlb_mis")] == 4.0
        assert v.sum() == 4.0

    def test_rates_vector_negative_rejected(self):
        with pytest.raises(ValueError):
            rates_vector({"fxu0": -1.0})

    def test_broken_counters_listed(self):
        assert BROKEN_COUNTERS == {"fpu0_fp_div", "fpu1_fp_div"}
