"""Reference D-cache simulator: LRU, write-back, and §5's analytics."""

import numpy as np
import pytest

from repro.power2.config import CacheGeometry, POWER2_590
from repro.power2.dcache import SetAssociativeCache


def small_cache(assoc: int = 2, line: int = 64, total: int = 1024) -> SetAssociativeCache:
    return SetAssociativeCache(CacheGeometry(total_bytes=total, line_bytes=line, associativity=assoc))


class TestBasics:
    def test_first_access_misses_second_hits(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.access(8) is True  # same line

    def test_distinct_lines_miss_independently(self):
        c = small_cache(line=64)
        assert c.access(0) is False
        assert c.access(64) is False

    def test_stats_accounting(self):
        c = small_cache()
        for a in (0, 8, 64, 0):
            c.access(a)
        s = c.stats
        assert s.accesses == 4 and s.hits == 2 and s.misses == 2
        s.check()

    def test_reset_stats(self):
        c = small_cache()
        c.access(0)
        c.reset_stats()
        assert c.stats.accesses == 0

    def test_contains(self):
        c = small_cache()
        c.access(128)
        assert c.contains(128) and c.contains(129)
        assert not c.contains(0)


class TestLRU:
    def test_lru_eviction_order(self):
        # 2-way cache with 64-byte lines and 8 sets: addresses 0, 1024,
        # 2048 all map to set 0.
        c = small_cache(assoc=2, line=64, total=1024)
        c.access(0)
        c.access(1024)
        c.access(0)  # touch 0 so 1024 is LRU
        c.access(2048)  # evicts 1024
        assert c.access(0) is True
        assert c.access(1024) is False

    def test_working_set_within_assoc_always_hits(self):
        c = small_cache(assoc=4, line=64, total=2048)
        set_stride = 2048 // 4  # lines mapping to the same set
        addrs = [i * set_stride for i in range(4)]
        for a in addrs:
            c.access(a)
        c.reset_stats()
        for _ in range(10):
            for a in addrs:
                assert c.access(a) is True


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        c = small_cache(assoc=1, line=64, total=512)  # direct-mapped, 8 sets
        c.access(0, write=True)
        c.access(512)  # same set, evicts dirty line
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache(assoc=1, line=64, total=512)
        c.access(0)
        c.access(512)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = small_cache(assoc=1, line=64, total=512)
        c.access(0)  # clean fill
        c.access(8, write=True)  # write hit dirties it
        c.access(512)  # eviction must write back
        assert c.stats.writebacks == 1

    def test_flush_reports_dirty_lines(self):
        c = small_cache()
        c.access(0, write=True)
        c.access(64, write=True)
        c.access(128)
        assert c.flush() == 2
        assert c.access(0) is False  # everything invalidated


class TestRun:
    def test_run_stream(self):
        c = small_cache()
        stats = c.run(np.array([0, 8, 16, 64]))
        assert stats.accesses == 4

    def test_run_with_writes_mask(self):
        c = small_cache(assoc=1, line=64, total=512)
        c.run(np.array([0, 512]), writes=np.array([True, False]))
        assert c.stats.writebacks == 1

    def test_writes_mask_shape_checked(self):
        c = small_cache()
        with pytest.raises(ValueError):
            c.run(np.array([0, 1]), writes=np.array([True]))


class TestPaperAnchors:
    def test_sequential_miss_every_32_elements(self):
        """§5: 'For real*8 data, we would experience a cache-miss every
        32 elements' on the 256-byte line."""
        ratio = SetAssociativeCache.sequential_miss_ratio(POWER2_590.dcache)
        assert ratio == pytest.approx(1.0 / 32.0)

    def test_sequential_simulation_matches_analytic(self):
        c = SetAssociativeCache(POWER2_590.dcache)
        addrs = np.arange(0, 64 * 1024, 8)  # 8k sequential real*8 reads
        stats = c.run(addrs)
        assert stats.miss_ratio == pytest.approx(1.0 / 32.0, rel=0.01)

    def test_strided_miss_ratio_saturates(self):
        g = POWER2_590.dcache
        assert SetAssociativeCache.strided_miss_ratio(g, 256) == 1.0
        assert SetAssociativeCache.strided_miss_ratio(g, 512) == 1.0

    def test_strided_simulation_matches_analytic(self):
        c = SetAssociativeCache(POWER2_590.dcache)
        stride = 64
        addrs = np.arange(0, 4 * 1024 * 1024, stride)  # beyond capacity: no reuse
        stats = c.run(addrs)
        analytic = SetAssociativeCache.strided_miss_ratio(POWER2_590.dcache, stride)
        assert stats.miss_ratio == pytest.approx(analytic, rel=0.01)

    def test_in_cache_working_set_hits(self):
        """The §5 matmul fits in 256 kB and reuses it heavily."""
        c = SetAssociativeCache(POWER2_590.dcache)
        addrs = np.tile(np.arange(0, 128 * 1024, 8), 3)  # 128 kB, 3 passes
        stats = c.run(addrs)
        # Only the first pass misses.
        assert stats.miss_ratio < 0.012

    def test_nonpositive_stride_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache.strided_miss_ratio(POWER2_590.dcache, 0)
