"""Discrete-event kernel: ordering, cancellation, horizons."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda s: fired.append("c"))
        sim.schedule(1.0, lambda s: fired.append("a"))
        sim.schedule(2.0, lambda s: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(5.0, lambda s, t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_handler_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def first(s):
            fired.append("first")
            s.schedule(1.0, lambda s2: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda s: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda s: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda s: fired.append("x"))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        ev.cancel()
        assert sim.peek() == 2.0


class TestRun:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(10.0, lambda s: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0  # clock parked at the horizon

    def test_event_exactly_on_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda s: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda s, i=i: fired.append(i))
        with pytest.warns(RuntimeWarning, match="truncated"):
            sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.events_processed == 4

    def test_empty_run_is_noop(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0.0


class TestTruncation:
    def test_exhaustion_warns_and_reports_next_event(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda s: None)
        with pytest.warns(RuntimeWarning, match="max_events=2"):
            sim.run(max_events=2)
        assert sim.events_processed == 2

    def test_exhaustion_publishes_bus_event(self):
        from repro.telemetry.bus import TOPIC_SIM_TRUNCATED, EventBus

        sim = Simulator()
        sim.bus = EventBus()
        seen = []
        sim.bus.subscribe(TOPIC_SIM_TRUNCATED, seen.append)
        for i in range(5):
            sim.schedule(float(i + 1), lambda s: None)
        with pytest.warns(RuntimeWarning):
            sim.run(max_events=3)
        (ev,) = seen
        assert ev.events_processed == 3
        assert ev.time == 3.0
        assert ev.next_event_time == 4.0

    def test_draining_exactly_max_events_is_not_truncation(self):
        import warnings as _warnings

        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i + 1), lambda s: None)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_events_beyond_horizon_are_not_truncation(self):
        import warnings as _warnings

        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(10.0, lambda s: None)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            sim.run(until=5.0, max_events=1)
        assert sim.now == 5.0
