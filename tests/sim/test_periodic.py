"""Periodic tasks (the 15-minute cron sampler's engine)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.periodic import PeriodicTask


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 10.0, lambda s: times.append(s.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_custom_start(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 10.0, lambda s: times.append(s.now), start=5.0)
        sim.run(until=26.0)
        assert times == [5.0, 15.0, 25.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        task_box = {}
        times = []

        def cb(s):
            times.append(s.now)
            if len(times) == 2:
                task_box["t"].stop()

        task_box["t"] = PeriodicTask(sim, 1.0, cb)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_stop_before_first_fire(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 1.0, lambda s: fired.append(s.now))
        task.stop()
        sim.run(until=5.0)
        assert fired == []

    def test_fired_counter(self):
        sim = Simulator()
        task = PeriodicTask(sim, 2.0, lambda s: None)
        sim.run(until=9.0)
        assert task.fired == 4

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTask(Simulator(), 0.0, lambda s: None)

    def test_cadence_matches_cron_boundaries(self):
        """96 samples per simulated day at the paper's 15-min interval."""
        sim = Simulator()
        count = [0]
        PeriodicTask(sim, 900.0, lambda s: count.__setitem__(0, count[0] + 1))
        sim.run(until=86400.0)
        assert count[0] == 96
