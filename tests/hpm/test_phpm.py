"""PHPM parallel job reports."""

import pytest

from repro.hpm.phpm import ParallelJobReport
from repro.pbs.job import JobRecord


def record(per_node_flops, sys_ratios=None, wall=1000.0):
    """Synthetic job record with specified per-node flop counts."""
    n = len(per_node_flops)
    sys_ratios = sys_ratios or [0.02] * n
    deltas = {}
    for nid, (flops, ratio) in enumerate(zip(per_node_flops, sys_ratios)):
        user_fxu = 2.0 * flops
        deltas[nid] = {
            "user.fpu0_fp_add": int(flops),
            "user.fxu0": int(user_fxu / 2),
            "user.fxu1": int(user_fxu / 2),
            "system.fxu0": int(ratio * user_fxu),
        }
    return JobRecord(
        job_id=9,
        user=1,
        app_name="cfd",
        nodes_requested=n,
        node_ids=tuple(range(n)),
        submit_time=0.0,
        start_time=0.0,
        end_time=wall,
        counter_deltas=deltas,
    )


class TestReductions:
    def test_reduce_sums_and_bounds(self):
        rep = ParallelJobReport(record([1e9, 2e9, 3e9]))
        red = rep.reduce("user.fpu0_fp_add")
        assert red.total == pytest.approx(6e9)
        assert red.minimum == pytest.approx(1e9)
        assert red.maximum == pytest.approx(3e9)
        assert red.mean == pytest.approx(2e9)
        assert red.imbalance == pytest.approx(1.5)

    def test_missing_counter_reduces_to_zero(self):
        rep = ParallelJobReport(record([1e9]))
        red = rep.reduce("user.tlb_mis")
        assert red.total == 0.0
        assert red.imbalance == 1.0

    def test_reductions_batch(self):
        rep = ParallelJobReport(record([1e9, 1e9]))
        out = rep.reductions(["user.fxu0", "user.fxu1"])
        assert set(out) == {"user.fxu0", "user.fxu1"}

    def test_empty_record_rejected(self):
        rec = record([1e9])
        rec.counter_deltas = {}
        with pytest.raises(ValueError):
            ParallelJobReport(rec)


class TestBalance:
    def test_balanced_job(self):
        rep = ParallelJobReport(record([1e9] * 8))
        assert rep.flop_imbalance() == pytest.approx(1.0)
        assert rep.stragglers() == []

    def test_straggler_detected_worst_first(self):
        rep = ParallelJobReport(record([1e9, 1e9, 1e9, 1e8]))
        stragglers = rep.stragglers()
        assert len(stragglers) == 1
        assert stragglers[0].node_id == 3

    def test_paging_straggler_diagnosed(self):
        """§6: the slow node's system-mode counters give paging away."""
        rep = ParallelJobReport(
            record([1e9, 1e9, 5e7], sys_ratios=[0.02, 0.02, 4.0])
        )
        worst = rep.stragglers()[0]
        assert worst.node_id == 2
        assert worst.paging_suspect

    def test_healthy_straggler_not_paging_suspect(self):
        rep = ParallelJobReport(record([1e9, 1e9, 5e7]))
        worst = rep.stragglers()[0]
        assert not worst.paging_suspect

    def test_flop_shares_sum_to_one(self):
        rep = ParallelJobReport(record([3e9, 1e9, 4e9]))
        shares = [d.flop_share for d in rep.diagnose_nodes()]
        assert sum(shares) == pytest.approx(1.0)

    def test_diagnoses_sorted_by_flops(self):
        rep = ParallelJobReport(record([3e9, 1e9, 4e9]))
        flops = [d.flops for d in rep.diagnose_nodes()]
        assert flops == sorted(flops)


class TestSummary:
    def test_summary_mentions_imbalance_and_stragglers(self):
        rep = ParallelJobReport(
            record([1e9, 1e9, 1e7], sys_ratios=[0.02, 0.02, 3.0])
        )
        text = rep.summary()
        assert "imbalance" in text
        assert "paging" in text

    def test_summary_balanced(self):
        text = ParallelJobReport(record([1e9, 1e9])).summary()
        assert "stragglers" not in text
