"""Derived-metric algebra — the arithmetic behind Tables 2-4."""

import pytest

from repro.hpm.derived import workload_rates
from repro.power2.node import DMA_TRANSFER_BYTES

# One node, one second, in raw counts — chosen near Table 3's rates.
DELTAS = {
    "user.fpu0": 9.4e6,
    "user.fpu1": 5.4e6,
    "user.fpu0_fp_add": 3.0e6,
    "user.fpu1_fp_add": 1.8e6,
    "user.fpu0_fp_mul": 2.0e6,
    "user.fpu1_fp_mul": 1.2e6,
    "user.fpu0_fp_div": 0,  # broken counter
    "user.fpu1_fp_div": 0,
    "user.fpu0_fp_muladd": 2.9e6,
    "user.fpu1_fp_muladd": 1.8e6,
    "user.fxu0": 11.1e6,
    "user.fxu1": 16.5e6,
    "user.icu0": 2.8e6,
    "user.icu1": 0.5e6,
    "user.dcache_mis": 0.30e6,
    "user.tlb_mis": 0.04e6,
    "user.icache_reload": 0.014e6,
    "user.dma_read": 0.024e6,
    "user.dma_write": 0.017e6,
    "user.cycles": 50e6,
    "system.fxu0": 0.5e6,
    "system.fxu1": 0.5e6,
    "system.cycles": 5e6,
}


@pytest.fixture
def rates():
    return workload_rates(DELTAS, seconds=1.0, n_nodes=1)


class TestFlopAlgebra:
    def test_total_flops(self, rates):
        expected = (4.8 + 3.2 + 0.0 + 2 * 4.7)
        assert rates.mflops_total == pytest.approx(expected)

    def test_add_row_includes_fma_adds(self, rates):
        """§5: 'the fma add appears in the add operation count'."""
        assert rates.mflops_add == pytest.approx(4.8 + 4.7)

    def test_fma_row_is_fma_count(self, rates):
        assert rates.mflops_fma == pytest.approx(4.7)

    def test_div_row_zero_from_broken_counter(self, rates):
        assert rates.mflops_div == 0.0

    def test_rows_sum_to_total(self, rates):
        assert rates.mflops_add + rates.mflops_mul + rates.mflops_div + rates.mflops_fma == pytest.approx(
            rates.mflops_total
        )

    def test_fma_fraction(self, rates):
        assert rates.fma_flop_fraction == pytest.approx(2 * 4.7 / rates.mflops_total)


class TestInstructionAlgebra:
    def test_mips_total_sums_units(self, rates):
        assert rates.mips_total == pytest.approx(14.8 + 27.6 + 3.3)

    def test_mops_adds_fma_second_op(self, rates):
        assert rates.mops_total == pytest.approx(rates.mips_total + 4.7)

    def test_fpu_ratio(self, rates):
        assert rates.fpu_ratio == pytest.approx(9.4 / 5.4)

    def test_fxu_unit_rates(self, rates):
        assert rates.mips_fxu_unit0 == pytest.approx(11.1)
        assert rates.mips_fxu_unit1 == pytest.approx(16.5)

    def test_branch_fraction(self, rates):
        assert rates.branch_fraction == pytest.approx(3.3 / rates.mips_total)

    def test_flops_per_memory_inst(self, rates):
        assert rates.flops_per_memory_inst == pytest.approx(
            rates.mflops_total / 27.6
        )


class TestMemoryAlgebra:
    def test_miss_ratios_use_fxu_denominator(self, rates):
        """§5: 'We approximate the memory instruction issue rate by the
        sum of FXU0 and FXU1.'"""
        assert rates.dcache_miss_ratio == pytest.approx(0.30 / 27.6)
        assert rates.tlb_miss_ratio == pytest.approx(0.04 / 27.6)

    def test_icache_miss_fraction(self, rates):
        assert rates.icache_miss_fraction == pytest.approx(0.014 / rates.mips_total)

    def test_delay_per_memory_inst(self, rates):
        """§5's ≈0.12 cycles/memref, from these very rates."""
        expected = (0.30 * 8 + 0.04 * 45) / 27.6
        assert rates.delay_per_memory_inst() == pytest.approx(expected)
        # With the 36-cycle low-end TLB penalty the paper used, this is
        # its 0.12; with our 45-cycle midpoint it lands slightly higher.
        assert rates.delay_per_memory_inst() == pytest.approx(0.12, abs=0.05)


class TestSystemAndIO:
    def test_system_user_ratio(self, rates):
        assert rates.system_user_fxu_ratio == pytest.approx(1.0 / 27.6)

    def test_user_cycle_fraction(self, rates):
        assert rates.user_cycle_fraction == pytest.approx(50 / 55)

    def test_dma_bytes(self, rates):
        assert rates.dma_bytes_per_s == pytest.approx(
            (0.024e6 + 0.017e6) * DMA_TRANSFER_BYTES
        )

    def test_gflops_system_scaling(self, rates):
        """'system rates may be obtained by multiplying by 144' (§5)."""
        assert rates.gflops_system(144) == pytest.approx(rates.mflops_total * 0.144)


class TestNormalization:
    def test_rates_divide_by_nodes_and_seconds(self):
        r2 = workload_rates(DELTAS, seconds=2.0, n_nodes=2)
        r1 = workload_rates(DELTAS, seconds=1.0, n_nodes=1)
        assert r2.mflops_total == pytest.approx(r1.mflops_total / 4)

    def test_nonpositive_seconds_rejected(self):
        with pytest.raises(ValueError):
            workload_rates(DELTAS, 0.0, 1)

    def test_nonpositive_nodes_rejected(self):
        with pytest.raises(ValueError):
            workload_rates(DELTAS, 1.0, 0)

    def test_missing_counters_default_zero(self):
        r = workload_rates({"user.fpu0_fp_add": 1e6}, 1.0, 1)
        assert r.mflops_total == pytest.approx(1.0)
        assert r.fpu_ratio == float("inf")  # no fpu1 instructions
        assert r.system_user_fxu_ratio == 0.0
