"""Monitor interface and multipass sampling."""

import pytest

from repro.hpm.events import NAS_SELECTION, CounterGroup
from repro.hpm.monitor_api import MonitorInterface, MultipassSampler
from repro.power2.counters import rates_vector
from repro.power2.node import Node


def busy_node() -> Node:
    n = Node(0)
    n.install_rates(
        0.0,
        rates_vector({"fpu0": 1e6, "fpu0_fp_add": 1e6, "fxu0": 2e6, "cycles": 3e7}),
        busy=True,
    )
    return n


class TestMonitorInterface:
    def test_defaults_to_nas_group(self):
        assert MonitorInterface(Node(0)).group.name == "nas-table1"

    def test_read_syncs_node(self):
        iface = MonitorInterface(busy_node())
        r = iface.read(10.0)
        assert r.values["user.fpu0"] == pytest.approx(1e7, rel=1e-9)

    def test_delta(self):
        iface = MonitorInterface(busy_node())
        a = iface.read(10.0)
        b = iface.read(20.0)
        d = MonitorInterface.delta(a, b)
        assert d["user.fpu0"] == pytest.approx(1e7, rel=1e-6)

    def test_delta_rejects_cross_group(self):
        iface = MonitorInterface(busy_node())
        cat = iface.catalog
        alt = CounterGroup("alt", dict(NAS_SELECTION.selection))
        cat.register(alt, verified=True)
        a = iface.read(1.0)
        iface.program("alt")
        b = iface.read(2.0)
        with pytest.raises(ValueError):
            MonitorInterface.delta(a, b)

    def test_delta_rejects_out_of_order(self):
        iface = MonitorInterface(busy_node())
        a = iface.read(1.0)
        b = iface.read(2.0)
        with pytest.raises(ValueError):
            MonitorInterface.delta(b, a)

    def test_program_unverified_refused(self):
        iface = MonitorInterface(Node(0))
        iface.catalog.register(CounterGroup("x", dict(NAS_SELECTION.selection)))
        with pytest.raises(PermissionError):
            iface.program("x")


class TestMultipassSampler:
    def _catalog_with(self, iface, names):
        for name in names:
            iface.catalog.register(
                CounterGroup(name, dict(NAS_SELECTION.selection)), verified=True
            )

    def test_single_group_equals_direct_measurement(self):
        iface = MonitorInterface(busy_node())
        sampler = MultipassSampler(iface, ["nas-table1"])
        out = sampler.sample(0.0, 100.0)
        assert out["nas-table1"]["user.fpu0"] == pytest.approx(1e8, rel=1e-6)

    def test_multipass_extrapolates_to_full_interval(self):
        """§3's multipass mode: each group sees 1/n of the time but the
        estimate covers the whole interval (exact for steady rates)."""
        iface = MonitorInterface(busy_node())
        self._catalog_with(iface, ["g2", "g3"])
        sampler = MultipassSampler(iface, ["nas-table1", "g2", "g3"])
        out = sampler.sample(0.0, 300.0)
        for group in ("nas-table1", "g2", "g3"):
            assert out[group]["user.fpu0"] == pytest.approx(3e8, rel=1e-3)

    def test_requires_verified_groups(self):
        iface = MonitorInterface(Node(0))
        iface.catalog.register(CounterGroup("raw", dict(NAS_SELECTION.selection)))
        with pytest.raises(PermissionError):
            MultipassSampler(iface, ["raw"])

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            MultipassSampler(MonitorInterface(Node(0)), [])

    def test_empty_interval_rejected(self):
        sampler = MultipassSampler(MonitorInterface(Node(0)), ["nas-table1"])
        with pytest.raises(ValueError):
            sampler.sample(5.0, 5.0)
