"""The collector's batched sweep vs. the per-daemon scalar path.

When every daemon's node shares one counter store (the vectorized
accrual backends), :class:`SystemCollector` collapses its per-node
sampling loop into one ``sync_slots`` sweep.  These are regression tests
for the one real hazard in that collapse: an *unreachable* node must be
masked out of the sweep entirely — its counters AND its sync clock must
not advance — because a scalar collector never touches a down node, and
float accrual does not distribute over a late catch-up sync
(``rate*dt1 + rate*dt2 != rate*(dt1+dt2)`` bitwise).
"""

import numpy as np

from repro.hpm.collector import SystemCollector
from repro.hpm.daemon import NodeDaemon
from repro.power2.batch import make_store
from repro.power2.counters import rates_vector
from repro.power2.node import Node

# Rates chosen so rate*dt accumulates rounding: per-interval syncs and a
# single catch-up sync differ in the low mantissa bits, which is exactly
# what these tests must be able to detect.
RATES = {"fpu0_fp_add": 1.1e6 / 3.0, "fpu0": 0.7e6 / 3.0, "cycles": 6.65e7 / 3.0}


def make_stacks(n=4, backend="numpy"):
    """Parallel scalar and store-backed collector stacks over n nodes."""
    scalar_nodes = [Node(i) for i in range(n)]
    store = make_store(n, backend)
    batched_nodes = []
    for i in range(n):
        node = Node(i)
        node.attach_store(store, i)
        batched_nodes.append(node)
    for node in scalar_nodes + batched_nodes:
        node.install_rates(0.0, rates_vector(RATES), busy=True)
    scalar_col = SystemCollector([NodeDaemon.for_node(n) for n in scalar_nodes])
    batched_col = SystemCollector([NodeDaemon.for_node(n) for n in batched_nodes])
    assert batched_col._store is store  # the fast path actually engaged
    assert scalar_col._store is None
    return scalar_col, batched_col


def assert_samples_identical(a: SystemCollector, b: SystemCollector):
    assert len(a.samples) == len(b.samples)
    for x, y in zip(a.samples, b.samples):
        assert x.time == y.time
        assert x.node_ids == y.node_ids
        assert x.missing == y.missing
        assert np.array_equal(x.matrix, np.asarray(y.matrix))


class TestBatchedSweepEquivalence:
    def test_all_up_passes_identical(self):
        scalar, batched = make_stacks()
        for t in (0.0, 900.0, 1800.0, 2700.0):
            scalar.collect(t)
            batched.collect(t)
        assert_samples_identical(scalar, batched)
        assert len(scalar.intervals()) == 3

    def test_python_store_sweep_identical(self):
        scalar, batched = make_stacks(backend="python")
        for t in (0.0, 900.0, 1800.0):
            scalar.collect(t)
            batched.collect(t)
        assert_samples_identical(scalar, batched)


class TestUnreachableNodeMasking:
    def test_down_node_clock_does_not_advance(self):
        """The regression: a down node must be excluded from the batched
        sweep, not synced and discarded."""
        _, batched = make_stacks(n=2)
        store = batched._store
        batched.collect(0.0)
        batched.daemons[1].mark_down()
        batched.collect(900.0)
        assert batched.samples[1].missing == (1,)
        assert store.last_sync(0) == 900.0
        assert store.last_sync(1) == 0.0  # untouched while unreachable

    def test_outage_and_recovery_bitwise_identical(self):
        """Down across several passes, then back: every sample byte
        matches the scalar collector, including the catch-up sample
        (both paths defer the down node's whole outage to one sync)."""
        scalar, batched = make_stacks(n=4)
        schedule = [
            (0.0, None),
            (900.0, ("down", 2)),
            (1800.0, None),
            (2700.0, ("down", 0)),
            (3600.0, ("up", 2)),
            (4500.0, ("up", 0)),
            (5400.0, None),
        ]
        for t, change in schedule:
            if change is not None:
                op, idx = change
                for col in (scalar, batched):
                    if op == "down":
                        col.daemons[idx].mark_down()
                    else:
                        col.daemons[idx].mark_up()
            scalar.collect(t)
            batched.collect(t)
        assert_samples_identical(scalar, batched)
        assert any(s.missing for s in scalar.samples)
        iv_a, iv_b = scalar.intervals(), batched.intervals()
        assert [i.totals for i in iv_a] == [i.totals for i in iv_b]
        assert [i.n_nodes for i in iv_a] == [i.n_nodes for i in iv_b]

    def test_all_nodes_down_pass(self):
        scalar, batched = make_stacks(n=2)
        for col in (scalar, batched):
            col.collect(0.0)
            for d in col.daemons:
                d.mark_down()
            col.collect(900.0)
            for d in col.daemons:
                d.mark_up()
            col.collect(1800.0)
        assert_samples_identical(scalar, batched)
        assert scalar.samples[1].node_ids == ()
        assert scalar.samples[1].missing == (0, 1)


class TestFastPathGating:
    def test_mixed_stores_fall_back_to_scalar_path(self):
        """Nodes on different stores (or none) must not engage the
        batched sweep."""
        a = Node(0)
        a.attach_store(make_store(1, "python"), 0)
        b = Node(1)  # detached
        b.install_rates(0.0, rates_vector(RATES), busy=True)
        a.install_rates(0.0, rates_vector(RATES), busy=True)
        col = SystemCollector([NodeDaemon.for_node(a), NodeDaemon.for_node(b)])
        assert col._store is None
        col.collect(0.0)
        col.collect(900.0)
        assert col.samples[1].node_ids == (0, 1)
