"""Per-program measurement (§3's user-level RS2HPM commands)."""

import pytest

from repro.hpm.program import ProgramMonitor
from repro.power2.node import Node, PhaseKind, WorkPhase
from repro.power2.pipeline import CycleModel
from repro.workload.kernels import kernel


def run_kernel(node: Node, name: str, flops: float) -> None:
    k = kernel(name)
    execution = CycleModel(node.config).execute(
        k.mix_for_flops(flops), k.memory_behaviour(), k.deps
    )
    node.run_phase(WorkPhase(kind=PhaseKind.COMPUTE, execution=execution))


class TestSinglePhase:
    def test_measures_flops(self):
        node = Node(0)
        with ProgramMonitor(node) as pm:
            run_kernel(node, "cfd_multiblock", 1e8)
        rates = pm.report.rates
        assert rates.mflops_total == pytest.approx(
            1e8 / pm.report.total_seconds / 1e6, rel=0.05
        )

    def test_only_monitored_window_counted(self):
        node = Node(0)
        run_kernel(node, "cfd_multiblock", 1e8)  # before monitoring
        with ProgramMonitor(node) as pm:
            run_kernel(node, "cfd_multiblock", 1e7)
        flops = pm.report.rates.mflops_total * pm.report.total_seconds
        assert flops == pytest.approx(1e7 / 1e6, rel=0.05)  # Mflop units

    def test_empty_program(self):
        node = Node(0)
        with ProgramMonitor(node) as pm:
            pass
        assert pm.report.phases == []
        with pytest.raises(ValueError):
            pm.report.rates


class TestPhases:
    def _run(self):
        node = Node(0)
        with ProgramMonitor(node, first_phase="init") as pm:
            run_kernel(node, "nonfp_preproc", 2e6)
            pm.mark("iterate")
            run_kernel(node, "cfd_multiblock", 5e7)
            pm.mark("output")
            node.run_phase(
                WorkPhase(kind=PhaseKind.IO_WAIT, seconds=0.5, dma_read_bytes=6e6)
            )
        return pm.report

    def test_phase_names_ordered(self):
        report = self._run()
        assert [p.name for p in report.phases] == ["init", "iterate", "output"]

    def test_phase_isolation(self):
        report = self._run()
        init = report.phase("init")
        iterate = report.phase("iterate")
        assert iterate.rates.mflops_total > 5 * init.rates.mflops_total

    def test_io_phase_has_dma_but_no_flops(self):
        output = self._run().phase("output")
        assert output.deltas.get("user.dma_read", 0) > 0
        assert output.rates.mflops_total == 0.0

    def test_totals_are_sum_of_phases(self):
        report = self._run()
        total = report.totals()
        by_hand: dict[str, int] = {}
        for p in report.phases:
            for k, v in p.deltas.items():
                by_hand[k] = by_hand.get(k, 0) + v
        assert total == by_hand

    def test_hotspots_ranked(self):
        report = self._run()
        names = [n for n, _ in report.hotspots()]
        assert names[0] == "iterate"
        shares = [s for _, s in report.hotspots()]
        assert sum(shares) == pytest.approx(1.0)

    def test_unknown_phase_raises(self):
        with pytest.raises(KeyError):
            self._run().phase("nope")

    def test_mark_outside_context_raises(self):
        pm = ProgramMonitor(Node(0))
        with pytest.raises(RuntimeError):
            pm.mark("x")


class TestTuningWorkflow:
    def test_before_after_comparison(self):
        """The §7 story: a user rewrites for fma/register reuse and the
        monitor shows the improvement."""
        node = Node(0)
        with ProgramMonitor(node, first_phase="legacy") as pm:
            run_kernel(node, "legacy_vector", 2e7)
            pm.mark("tuned")
            run_kernel(node, "cfd_tuned", 2e7)
        legacy = pm.report.phase("legacy").rates
        tuned = pm.report.phase("tuned").rates
        assert tuned.mflops_total > 2 * legacy.mflops_total
        assert tuned.fma_flop_fraction > legacy.fma_flop_fraction
        assert tuned.flops_per_memory_inst > legacy.flops_per_memory_inst
