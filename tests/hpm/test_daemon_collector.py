"""Node daemons and the 15-minute system-wide collector."""

import numpy as np
import pytest

from repro.hpm.collector import SAMPLE_INTERVAL_SECONDS, SystemCollector
from repro.hpm.daemon import DaemonUnavailable, NodeDaemon
from repro.power2.counters import rates_vector
from repro.power2.node import Node
from repro.sim.engine import Simulator


def make_nodes(n=4, rate=1e6):
    nodes = [Node(i) for i in range(n)]
    for node in nodes:
        node.install_rates(
            0.0, rates_vector({"fpu0_fp_add": rate, "cycles": 3e7}), busy=True
        )
    return nodes


class TestDaemon:
    def test_serves_snapshots(self):
        d = NodeDaemon.for_node(make_nodes(1)[0])
        r = d.request_snapshot(10.0)
        assert r.values["user.fpu0_fp_add"] == pytest.approx(1e7, rel=1e-9)

    def test_down_daemon_raises(self):
        d = NodeDaemon.for_node(Node(0))
        d.mark_down()
        with pytest.raises(DaemonUnavailable):
            d.request_snapshot(1.0)
        with pytest.raises(DaemonUnavailable):
            d.request_vector(1.0)
        d.mark_up()
        d.request_snapshot(1.0)

    def test_vector_matches_dict_snapshot(self):
        node = make_nodes(1)[0]
        d = NodeDaemon.for_node(node)
        vec = d.request_vector(5.0)
        snap = d.request_snapshot(5.0).values
        assert vec[0] == snap["user.fxu0"]


class TestCollector:
    def test_paper_cadence(self):
        assert SAMPLE_INTERVAL_SECONDS == 900.0

    def test_attach_takes_baseline_and_samples(self):
        sim = Simulator()
        daemons = [NodeDaemon.for_node(n) for n in make_nodes()]
        col = SystemCollector(daemons)
        col.attach(sim)
        sim.run(until=3 * 900.0)
        assert len(col.samples) == 4  # baseline + 3

    def test_interval_totals_sum_nodes(self):
        daemons = [NodeDaemon.for_node(n) for n in make_nodes(n=3, rate=2e6)]
        col = SystemCollector(daemons)
        col.collect(0.0)
        col.collect(100.0)
        ivs = col.intervals()
        assert len(ivs) == 1
        assert ivs[0].totals["user.fpu0_fp_add"] == pytest.approx(3 * 2e8, rel=1e-6)
        assert ivs[0].n_nodes == 3
        assert ivs[0].seconds == 100.0

    def test_missing_node_skipped_for_interval(self):
        daemons = [NodeDaemon.for_node(n) for n in make_nodes(n=2)]
        col = SystemCollector(daemons)
        col.collect(0.0)
        daemons[1].mark_down()
        col.collect(100.0)
        assert col.samples[1].missing == (1,)
        ivs = col.intervals()
        assert ivs[0].n_nodes == 1

    def test_node_recovery_rejoins(self):
        daemons = [NodeDaemon.for_node(n) for n in make_nodes(n=2)]
        col = SystemCollector(daemons)
        col.collect(0.0)
        daemons[1].mark_down()
        col.collect(100.0)
        daemons[1].mark_up()
        col.collect(200.0)
        assert col.intervals()[1].n_nodes == 1  # down in 'before' sample

    def test_interval_matrix(self):
        daemons = [NodeDaemon.for_node(n) for n in make_nodes(n=2, rate=1e6)]
        col = SystemCollector(daemons)
        for t in (0.0, 50.0, 100.0):
            col.collect(t)
        times, counts = col.interval_matrix("user.fpu0_fp_add")
        np.testing.assert_allclose(times, [50.0, 100.0])
        np.testing.assert_allclose(counts, [1e8, 1e8], rtol=1e-6)

    def test_snapshot_for_compatibility_view(self):
        daemons = [NodeDaemon.for_node(n) for n in make_nodes(n=2)]
        col = SystemCollector(daemons)
        s = col.collect(10.0)
        snap = s.snapshot_for(1)
        assert snap["user.fpu0_fp_add"] == pytest.approx(1e7, rel=1e-9)

    def test_needs_daemons(self):
        with pytest.raises(ValueError):
            SystemCollector([])

    def test_intervals_cache_invalidation(self):
        daemons = [NodeDaemon.for_node(n) for n in make_nodes(n=1)]
        col = SystemCollector(daemons)
        col.collect(0.0)
        col.collect(10.0)
        assert len(col.intervals()) == 1
        col.collect(20.0)
        assert len(col.intervals()) == 2
