"""Event catalog and counter-group verification (§3)."""

import pytest

from repro.hpm.events import (
    EVENT_SPACE,
    EVENTS_PER_UNIT,
    NAS_SELECTION,
    SLOTS_PER_UNIT,
    CounterGroup,
    EventCatalog,
    table1_rows,
)


class TestEventSpace:
    def test_every_unit_has_16_events(self):
        """§3: '16 reportable events each'."""
        for unit, events in EVENT_SPACE.items():
            assert len(events) == EVENTS_PER_UNIT, unit

    def test_slot_counts_sum_to_22(self):
        assert sum(SLOTS_PER_UNIT.values()) == 22


class TestNASSelection:
    def test_is_valid(self):
        NAS_SELECTION.validate()

    def test_has_22_counters(self):
        assert NAS_SELECTION.n_counters == 22

    def test_contains_paper_events(self):
        assert "dcache_misses" in NAS_SELECTION.selection["FXU"]
        assert "fp_muladd" in NAS_SELECTION.selection["FPU0"]
        assert "dma_reads" in NAS_SELECTION.selection["SCU"]


class TestGroupValidation:
    def _selection(self, **overrides):
        sel = {k: tuple(v) for k, v in NAS_SELECTION.selection.items()}
        sel.update(overrides)
        return sel

    def test_wrong_slot_count_rejected(self):
        g = CounterGroup("bad", self._selection(ICU=("type1_insts",)))
        with pytest.raises(ValueError, match="needs 2 events"):
            g.validate()

    def test_unknown_event_rejected(self):
        g = CounterGroup("bad", self._selection(ICU=("type1_insts", "nope")))
        with pytest.raises(ValueError, match="no event"):
            g.validate()

    def test_duplicate_event_rejected(self):
        g = CounterGroup("bad", self._selection(ICU=("type1_insts", "type1_insts")))
        with pytest.raises(ValueError, match="duplicate"):
            g.validate()

    def test_missing_unit_rejected(self):
        sel = self._selection()
        del sel["SCU"]
        with pytest.raises(ValueError, match="missing unit"):
            CounterGroup("bad", sel).validate()


class TestCatalog:
    def test_nas_group_preverified(self):
        cat = EventCatalog()
        assert cat.is_verified("nas-table1")
        assert cat.get("nas-table1") is not None

    def test_unverified_group_refused(self):
        """§3: 'each combination must be implemented and verified'."""
        cat = EventCatalog()
        g = CounterGroup("experimental", dict(NAS_SELECTION.selection))
        cat.register(g)
        with pytest.raises(PermissionError):
            cat.get("experimental")

    def test_verify_then_get(self):
        cat = EventCatalog()
        g = CounterGroup("experimental", dict(NAS_SELECTION.selection))
        cat.register(g)
        cat.verify("experimental")
        assert cat.get("experimental") is g

    def test_verify_unknown_raises(self):
        with pytest.raises(KeyError):
            EventCatalog().verify("nope")

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            EventCatalog().get("nope")

    def test_register_validates(self):
        cat = EventCatalog()
        with pytest.raises(ValueError):
            cat.register(CounterGroup("bad", {}))

    def test_groups_listing(self):
        assert "nas-table1" in EventCatalog().groups()


class TestTable1:
    def test_22_rows(self):
        assert len(table1_rows()) == 22

    def test_labels_match_paper_convention(self):
        labels = [row[0] for row in table1_rows()]
        assert "user.fxu0" in labels
        assert "fpop.fp_muladd" in labels
        assert labels.count("fpop.fp_add") == 2  # one per FPU

    def test_slots_cover_all_units(self):
        slots = {row[1] for row in table1_rows()}
        assert {"FXU[0]", "FPU0[4]", "FPU1[4]", "ICU[1]", "SCU[4]"} <= slots
