"""Per-job report files: render + parse round-trip."""

import pytest

from repro.hpm.jobreport import parse_job_report, render_job_report, summarize_deltas
from repro.pbs.job import JobRecord


def record() -> JobRecord:
    return JobRecord(
        job_id=42,
        user=7,
        app_name="multiblock_cfd",
        nodes_requested=2,
        node_ids=(3, 5),
        submit_time=10.0,
        start_time=100.0,
        end_time=1100.0,
        counter_deltas={
            3: {"user.fpu0_fp_add": 1000, "user.fxu0": 2000, "system.fxu0": 10},
            5: {"user.fpu0_fp_add": 1500, "user.fxu0": 2500, "system.fxu0": 20},
        },
    )


class TestRender:
    def test_contains_header_and_meta(self):
        text = render_job_report(record())
        assert text.startswith("# RS2HPM job report v1")
        assert "job_id: 42" in text
        assert "app: multiblock_cfd" in text
        assert "[node 3]" in text and "[node 5]" in text

    def test_contains_derived_rates(self):
        text = render_job_report(record())
        assert "mflops_per_node:" in text
        assert "system_user_fxu_ratio:" in text


class TestRoundTrip:
    def test_parse_recovers_record(self):
        r = record()
        parsed = parse_job_report(render_job_report(r))
        assert parsed.job_id == r.job_id
        assert parsed.node_ids == r.node_ids
        assert parsed.counter_deltas == r.counter_deltas
        assert parsed.walltime_seconds == pytest.approx(r.walltime_seconds)

    def test_derived_rates_recomputed_not_trusted(self):
        text = render_job_report(record())
        # Tamper with the derived line; counters win on re-parse.
        tampered = text.replace("mflops_per_node:", "mflops_per_node: 99999 #")
        parsed = parse_job_report(tampered)
        assert parsed.total_mflops < 1.0


class TestParseErrors:
    def test_rejects_non_report(self):
        with pytest.raises(ValueError, match="not an RS2HPM"):
            parse_job_report("hello world")

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing fields"):
            parse_job_report("# RS2HPM job report v1\njob_id: 1")

    def test_rejects_malformed_counter_line(self):
        text = render_job_report(record()) + "user.bad_line\n"
        with pytest.raises(ValueError, match="malformed counter"):
            parse_job_report(text)


class TestSummarize:
    def test_summary_mentions_key_rates(self):
        deltas = {
            "user.fpu0_fp_add": 17.4e6,
            "user.fxu0": 13e6,
            "user.fxu1": 14e6,
        }
        line = summarize_deltas(deltas, 1.0, 1)
        assert "Mflops/node" in line
        assert "flops/memref" in line
