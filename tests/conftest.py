"""Shared fixtures.

The campaign fixtures are session-scoped: a small end-to-end study is
expensive enough (~1 s) that the analysis/integration tests share one.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.study import StudyDataset, run_study


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/ expectation files from the current "
        "outputs instead of comparing against them",
    )


@pytest.fixture(autouse=True)
def _reset_shared_singletons():
    """Restore module-level shared state after every test.

    ``NULL_TRACER`` is a process-wide singleton handed to call sites
    that want a non-None tracer default; a test that enables it, binds a
    clock or a telemetry bus to it, or records spans through it would
    otherwise leak that state into whichever test runs next — the suite
    must pass under ``pytest -p no:randomly`` and any other ordering.
    """
    yield
    from repro.tracing.tracer import NULL_TRACER

    NULL_TRACER.enabled = False
    NULL_TRACER.bus = None
    NULL_TRACER.clock = lambda: 0.0
    NULL_TRACER.spans.clear()
    NULL_TRACER._stack.clear()
    NULL_TRACER._ids = itertools.count(1)


@pytest.fixture(scope="session")
def small_dataset() -> StudyDataset:
    """A 10-day, 64-node campaign — fast, but has real jobs and samples."""
    return run_study(seed=7, n_days=10, n_nodes=64, n_users=20)


@pytest.fixture(scope="session")
def month_dataset() -> StudyDataset:
    """A 30-day, 144-node campaign — used by calibration-sensitive tests."""
    return run_study(seed=1, n_days=30, n_nodes=144, n_users=60)
