"""Shared fixtures.

The campaign fixtures are session-scoped: a small end-to-end study is
expensive enough (~1 s) that the analysis/integration tests share one.
"""

from __future__ import annotations

import pytest

from repro.core.study import StudyDataset, run_study


@pytest.fixture(scope="session")
def small_dataset() -> StudyDataset:
    """A 10-day, 64-node campaign — fast, but has real jobs and samples."""
    return run_study(seed=7, n_days=10, n_nodes=64, n_users=20)


@pytest.fixture(scope="session")
def month_dataset() -> StudyDataset:
    """A 30-day, 144-node campaign — used by calibration-sensitive tests."""
    return run_study(seed=1, n_days=30, n_nodes=144, n_users=60)
