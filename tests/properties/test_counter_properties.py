"""Property tests: counter banks, wrap algebra, dispatch conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power2.counters import (
    BROKEN_COUNTERS,
    COUNTER_MODULUS,
    COUNTER_NAMES,
    CounterBank,
    wrapped_delta,
)
from repro.power2.dispatch import DispatchModel
from repro.power2.isa import InstructionMix

amounts = st.dictionaries(
    st.sampled_from(COUNTER_NAMES),
    st.floats(min_value=0, max_value=1e12, allow_nan=False),
    max_size=10,
)

mixes = st.builds(
    InstructionMix,
    fp_add=st.floats(0, 1e6),
    fp_mul=st.floats(0, 1e6),
    fp_div=st.floats(0, 1e5),
    fp_sqrt=st.floats(0, 1e5),
    fp_fma=st.floats(0, 1e6),
    fp_misc=st.floats(0, 1e5),
    loads=st.floats(0, 1e6),
    stores=st.floats(0, 1e6),
    quad_loads=st.floats(0, 1e5),
    quad_stores=st.floats(0, 1e5),
    int_ops=st.floats(0, 1e5),
    branches=st.floats(0, 1e5),
    cr_ops=st.floats(0, 1e4),
)


class TestBankProperties:
    @given(amounts)
    @settings(max_examples=80, deadline=None)
    def test_counters_monotonic(self, amts):
        bank = CounterBank()
        before = {n: bank.read(n) for n in COUNTER_NAMES}
        bank.add_many(amts)
        for n in COUNTER_NAMES:
            assert bank.read(n) >= before[n]

    @given(amounts)
    @settings(max_examples=80, deadline=None)
    def test_broken_counters_always_zero(self, amts):
        bank = CounterBank()
        bank.add_many(amts)
        for n in BROKEN_COUNTERS:
            assert bank.read(n) == 0
            assert bank.hardware_read(n) == 0

    @given(amounts)
    @settings(max_examples=50, deadline=None)
    def test_hardware_read_is_software_mod_2_32(self, amts):
        bank = CounterBank()
        bank.add_many(amts)
        for n in set(COUNTER_NAMES) - BROKEN_COUNTERS:
            assert bank.hardware_read(n) == bank.read(n) % COUNTER_MODULUS

    @given(amounts)
    @settings(max_examples=50, deadline=None)
    def test_snapshot_vector_consistent_with_reads(self, amts):
        bank = CounterBank()
        bank.add_many(amts)
        vec = bank.snapshot_vector()
        for i, n in enumerate(COUNTER_NAMES):
            assert vec[i] == bank.read(n)


class TestWrapProperties:
    @given(
        st.integers(0, COUNTER_MODULUS - 1),
        st.integers(0, COUNTER_MODULUS - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_wrapped_delta_inverts_wrapped_addition(self, start, inc):
        after = (start + inc) % COUNTER_MODULUS
        assert wrapped_delta(start, after) == inc

    @given(st.integers(0, COUNTER_MODULUS - 1))
    @settings(max_examples=50, deadline=None)
    def test_zero_delta(self, v):
        assert wrapped_delta(v, v) == 0


class TestDispatchConservation:
    @given(mixes, st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_fp_instructions_conserved(self, mix, ilp):
        d = DispatchModel(ilp=ilp).split(mix)
        assert d.fpu0 + d.fpu1 == pytest.approx(mix.fpu_insts, abs=1e-6)

    @given(mixes, st.floats(0.0, 1.0), st.floats(0, 1e5))
    @settings(max_examples=100, deadline=None)
    def test_fxu_conserved_up_to_miss_handling(self, mix, ilp, misses):
        d = DispatchModel(ilp=ilp).split(mix, dcache_miss_handling=misses)
        assert d.fxu_total == pytest.approx(mix.fxu_insts + misses, abs=1e-6)

    @given(mixes, st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_fpu0_never_below_fpu1_for_uniform_work(self, mix, ilp):
        d = DispatchModel(ilp=ilp).split(mix)
        # FPU0 receives at least as much pipelined work as FPU1 by
        # construction (dispatch fills FPU0 first); allow tiny float slop.
        assert d.fpu0 >= d.fpu1 - 1e-6 - mix.fp_div - mix.fp_sqrt
