"""Property tests: PBS never oversubscribes, conserves jobs, keeps time."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import SP2Machine
from repro.pbs.scheduler import PBSServer
from repro.power2.counters import rates_vector
from repro.sim.engine import Simulator


class Profile:
    def __init__(self, walltime: float, memory: float = 64e6):
        self.walltime_seconds = walltime
        self.memory_bytes_per_node = memory
        self.user_rates = rates_vector({"fpu0_fp_add": 1e6, "cycles": 1e7})
        self.system_rates = rates_vector({"fxu0": 1e5})
        self.mflops_per_node = 1.0


job_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=32),     # nodes
        st.floats(min_value=1.0, max_value=5000.0), # walltime
        st.floats(min_value=0.0, max_value=4000.0), # submit delay
    ),
    min_size=1,
    max_size=25,
)


class TestSchedulerProperties:
    @given(job_lists)
    @settings(max_examples=40, deadline=None)
    def test_never_oversubscribes_and_all_jobs_finish(self, jobs):
        sim = Simulator()
        machine = SP2Machine(32)
        server = PBSServer(sim, machine)

        # Instrument: check free-node invariant at every job end.
        def check(record):
            assert machine.n_free >= 0
            assert len(machine.busy_node_ids()) + machine.n_free == 32

        server.on_job_end = check
        t = 0.0
        for nodes, wall, delay in jobs:
            t += delay
            sim.schedule_at(
                t,
                lambda s, n=nodes, w=wall: server.submit(0, "app", n, Profile(w)),
            )
        sim.run()
        assert len(server.accounting) == len(jobs)
        assert server.n_running == 0
        assert machine.n_free == 32

    @given(job_lists)
    @settings(max_examples=30, deadline=None)
    def test_jobs_never_start_before_submission(self, jobs):
        sim = Simulator()
        server = PBSServer(sim, SP2Machine(32))
        t = 0.0
        for nodes, wall, delay in jobs:
            t += delay
            sim.schedule_at(
                t, lambda s, n=nodes, w=wall: server.submit(0, "app", n, Profile(w))
            )
        sim.run()
        for rec in server.accounting.records:
            assert rec.start_time >= rec.submit_time - 1e-9
            assert rec.end_time >= rec.start_time

    @given(job_lists)
    @settings(max_examples=30, deadline=None)
    def test_walltimes_honoured(self, jobs):
        sim = Simulator()
        server = PBSServer(sim, SP2Machine(32))
        expected = {}
        t = 0.0
        for i, (nodes, wall, delay) in enumerate(jobs):
            t += delay
            expected[i + 1] = wall  # job ids are 1-based and submission-ordered

            def submit(s, n=nodes, w=wall):
                server.submit(0, "app", n, Profile(w))

            sim.schedule_at(t, submit)
        sim.run()
        # Job ids are assigned at submit time; map by id order of submit
        # events (submissions at equal times keep FIFO order).
        for rec in server.accounting.records:
            assert rec.walltime_seconds == _close(expected[rec.job_id])

    @given(job_lists)
    @settings(max_examples=30, deadline=None)
    def test_memory_fully_released(self, jobs):
        sim = Simulator()
        machine = SP2Machine(32)
        server = PBSServer(sim, machine)
        t = 0.0
        for nodes, wall, delay in jobs:
            t += delay
            sim.schedule_at(
                t, lambda s, n=nodes, w=wall: server.submit(0, "app", n, Profile(w))
            )
        sim.run()
        assert all(node.memory_used == 0.0 for node in machine.nodes)


def _close(expected: float):
    import pytest

    return pytest.approx(expected, rel=1e-9, abs=1e-6)
