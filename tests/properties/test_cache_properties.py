"""Property tests: cache and TLB invariants under random access streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power2.config import CacheGeometry, TLBGeometry
from repro.power2.dcache import SetAssociativeCache
from repro.power2.tlb import TLB

geometries = st.sampled_from(
    [
        CacheGeometry(total_bytes=1024, line_bytes=64, associativity=1),
        CacheGeometry(total_bytes=2048, line_bytes=64, associativity=2),
        CacheGeometry(total_bytes=4096, line_bytes=128, associativity=4),
    ]
)

streams = st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300)
write_flags = st.lists(st.booleans(), min_size=1, max_size=300)


class TestCacheInvariants:
    @given(geometries, streams)
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, geom, addrs):
        c = SetAssociativeCache(geom)
        c.run(np.array(addrs))
        c.stats.check()
        assert c.stats.accesses == len(addrs)

    @given(geometries, streams)
    @settings(max_examples=40, deadline=None)
    def test_repeat_of_last_access_always_hits(self, geom, addrs):
        c = SetAssociativeCache(geom)
        c.run(np.array(addrs))
        assert c.access(addrs[-1]) is True

    @given(geometries, streams, write_flags)
    @settings(max_examples=40, deadline=None)
    def test_writebacks_never_exceed_misses(self, geom, addrs, flags):
        c = SetAssociativeCache(geom)
        n = min(len(addrs), len(flags))
        c.run(np.array(addrs[:n]), writes=np.array(flags[:n]))
        assert c.stats.writebacks <= c.stats.misses

    @given(geometries, streams)
    @settings(max_examples=30, deadline=None)
    def test_miss_count_at_least_distinct_lines_touched_cold(self, geom, addrs):
        """A cold cache must miss at least once per distinct line (and at
        most once per access)."""
        c = SetAssociativeCache(geom)
        c.run(np.array(addrs))
        shift = int(geom.line_bytes).bit_length() - 1
        distinct = len({a >> shift for a in addrs})
        assert distinct <= c.stats.misses <= len(addrs)

    @given(streams)
    @settings(max_examples=30, deadline=None)
    def test_direct_mapped_matches_reference_model(self, addrs):
        """Direct-mapped cache against a trivial dict reference."""
        geom = CacheGeometry(total_bytes=512, line_bytes=64, associativity=1)
        c = SetAssociativeCache(geom)
        ref: dict[int, int] = {}
        for a in addrs:
            line = a >> 6
            s = line % geom.n_sets
            expect_hit = ref.get(s) == line
            assert c.access(a) is expect_hit
            ref[s] = line

    @given(streams)
    @settings(max_examples=30, deadline=None)
    def test_lru_matches_reference_model(self, addrs):
        """2-way LRU against an ordered-list reference."""
        geom = CacheGeometry(total_bytes=1024, line_bytes=64, associativity=2)
        c = SetAssociativeCache(geom)
        ref: dict[int, list[int]] = {}
        for a in addrs:
            line = a >> 6
            s = line % geom.n_sets
            ways = ref.setdefault(s, [])
            expect_hit = line in ways
            assert c.access(a) is expect_hit
            if expect_hit:
                ways.remove(line)
            elif len(ways) == 2:
                ways.pop(0)  # evict LRU
            ways.append(line)


class TestTLBInvariants:
    @given(streams)
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses(self, addrs):
        t = TLB(TLBGeometry(entries=16, associativity=2))
        t.run(np.array(addrs))
        assert t.stats.hits + t.stats.misses == t.stats.accesses == len(addrs)

    @given(streams)
    @settings(max_examples=40, deadline=None)
    def test_flush_forces_miss(self, addrs):
        t = TLB(TLBGeometry(entries=16, associativity=2))
        t.run(np.array(addrs))
        t.flush()
        assert t.access(addrs[0]) is False

    @given(streams)
    @settings(max_examples=30, deadline=None)
    def test_cold_misses_equal_distinct_pages_when_capacity_suffices(self, addrs):
        """The 1 MB address space spans ≤256 pages — under the 512-entry
        capacity, so a cold TLB misses exactly once per distinct page."""
        t = TLB(TLBGeometry(entries=512, associativity=2))
        t.run(np.array(addrs))
        assert t.stats.misses == len({a >> 12 for a in addrs})
