"""Property tests: domain decomposition invariants (§4's machinery)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.decomposition import Decomposition, factor3

shapes = st.tuples(
    st.integers(min_value=8, max_value=96),
    st.integers(min_value=8, max_value=96),
    st.integers(min_value=8, max_value=96),
)
rank_counts = st.sampled_from([1, 2, 4, 6, 8, 12, 16, 27, 28, 32, 49, 64])


class TestFactor3Properties:
    @given(st.integers(min_value=1, max_value=512))
    @settings(max_examples=120, deadline=None)
    def test_product_invariant(self, p):
        a, b, c = factor3(p)
        assert a * b * c == p
        assert min(a, b, c) >= 1


class TestDecompositionProperties:
    @given(shapes, rank_counts)
    @settings(max_examples=60, deadline=None)
    def test_exact_cover(self, shape, ranks):
        d = Decomposition(shape, ranks)
        d.check()  # raises on any gap/overlap

    @given(shapes, rank_counts)
    @settings(max_examples=60, deadline=None)
    def test_rank_coords_bijective(self, shape, ranks):
        d = Decomposition(shape, ranks)
        seen = set()
        for r in range(ranks):
            c = d.coords_of(r)
            assert d.rank_of(c) == r
            seen.add(c)
        assert len(seen) == ranks

    @given(shapes, rank_counts)
    @settings(max_examples=40, deadline=None)
    def test_neighbor_symmetry(self, shape, ranks):
        d = Decomposition(shape, ranks)
        for r in range(ranks):
            for label, nb in d.neighbors(r).items():
                flipped = label[0] + ("-" if label[1] == "+" else "+")
                assert d.neighbors(nb)[flipped] == r

    @given(shapes, rank_counts)
    @settings(max_examples=40, deadline=None)
    def test_balance_bounded(self, shape, ranks):
        """Block distribution: the max/mean subdomain ratio is exactly
        bounded by the per-axis ceiling inflation,
        ``prod_i (1 + (p_i - 1) / n_i)`` — e.g. 49 ranks on (8,8,8) is a
        (1,7,7) grid whose 2x2x8 corner blocks run ~3x the 8^3/49 mean,
        and the bound admits that."""
        d = Decomposition(shape, ranks)
        bound = 1.0
        for n, p in zip(shape, d.proc_grid):
            bound *= 1.0 + (p - 1) / n
        assert 1.0 <= d.balance() <= bound + 1e-12

    @given(shapes, rank_counts)
    @settings(max_examples=40, deadline=None)
    def test_halo_bytes_nonnegative_and_boundary_smaller(self, shape, ranks):
        d = Decomposition(shape, ranks)
        halos = [d.halo_bytes(r, variables=5) for r in range(ranks)]
        assert all(h >= 0 for h in halos)
        if ranks > 1:
            assert max(halos) > 0
