"""Property tests: stats identities and derived-metric invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hpm.derived import workload_rates
from repro.util.stats import moving_average, time_weighted_mean

series = arrays(
    np.float64,
    st.integers(min_value=1, max_value=80),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)

count_values = st.floats(min_value=0, max_value=1e13, allow_nan=False)

delta_dicts = st.fixed_dictionaries(
    {},
    optional={
        f"user.{name}": count_values
        for name in (
            "fpu0",
            "fpu1",
            "fpu0_fp_add",
            "fpu1_fp_add",
            "fpu0_fp_mul",
            "fpu1_fp_mul",
            "fpu0_fp_muladd",
            "fpu1_fp_muladd",
            "fxu0",
            "fxu1",
            "icu0",
            "icu1",
            "dcache_mis",
            "tlb_mis",
            "icache_reload",
            "dma_read",
            "dma_write",
            "cycles",
        )
    }
    | {"system.fxu0": count_values, "system.fxu1": count_values, "system.cycles": count_values},
)


class TestStatsProperties:
    @given(series, st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_moving_average_bounded_by_series(self, x, w):
        out = moving_average(x, w)
        # cumsum-based implementation: allow magnitude-scaled float slop.
        tol = 1e-8 * (1.0 + np.abs(x).sum())
        assert out.min() >= x.min() - tol
        assert out.max() <= x.max() + tol

    @given(series)
    @settings(max_examples=40, deadline=None)
    def test_window_one_is_identity(self, x):
        tol = 1e-8 * (1.0 + np.abs(x).sum())
        np.testing.assert_allclose(moving_average(x, 1), x, atol=tol, rtol=1e-7)

    @given(series)
    @settings(max_examples=40, deadline=None)
    def test_huge_window_converges_to_prefix_means(self, x):
        out = moving_average(x, len(x) + 10)
        expected = np.cumsum(x) / np.arange(1, len(x) + 1)
        np.testing.assert_allclose(out, expected, rtol=1e-8, atol=1e-6)

    @given(series)
    @settings(max_examples=40, deadline=None)
    def test_time_weighted_mean_bounded(self, x):
        w = np.abs(x) + 1.0
        m = time_weighted_mean(x, w)
        assert x.min() - 1e-9 <= m <= x.max() + 1e-9


class TestDerivedProperties:
    @given(delta_dicts, st.floats(0.1, 1e6), st.integers(1, 144))
    @settings(max_examples=100, deadline=None)
    def test_rates_nonnegative_and_consistent(self, deltas, seconds, nodes):
        r = workload_rates(deltas, seconds, nodes)
        assert r.mflops_total >= 0
        assert r.mips_total >= 0
        # Flop rows always sum to the total.
        assert r.mflops_add + r.mflops_mul + r.mflops_div + r.mflops_fma == pytest.approx(
            r.mflops_total
        )
        # Mops counts the fma's second op exactly once.
        assert r.mops_total == pytest.approx(r.mips_total + r.mflops_fma)
        # Fractions bounded.
        assert 0.0 <= r.fma_flop_fraction <= 1.0 + 1e-9
        assert 0.0 <= r.branch_fraction <= 1.0 + 1e-9
        assert 0.0 <= r.user_cycle_fraction <= 1.0 + 1e-9

    @given(delta_dicts, st.floats(0.1, 1e5), st.integers(1, 144))
    @settings(max_examples=60, deadline=None)
    def test_rate_scaling_linear_in_time_and_nodes(self, deltas, seconds, nodes):
        a = workload_rates(deltas, seconds, nodes)
        b = workload_rates(deltas, 2 * seconds, nodes)
        assert b.mflops_total == pytest.approx(a.mflops_total / 2)
        c = workload_rates(deltas, seconds, 2 * nodes)
        assert c.mips_total == pytest.approx(a.mips_total / 2)

    @given(delta_dicts)
    @settings(max_examples=60, deadline=None)
    def test_gflops_system_scales_with_nodes(self, deltas):
        r = workload_rates(deltas, 100.0, 4)
        assert r.gflops_system(144) == pytest.approx(36 * r.gflops_system(4))
