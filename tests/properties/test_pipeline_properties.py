"""Property tests: cycle-model monotonicity and conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power2.config import POWER2_590
from repro.power2.isa import InstructionMix
from repro.power2.pipeline import CycleModel, DependencyProfile, MemoryBehaviour

mixes = st.builds(
    InstructionMix,
    fp_add=st.floats(0, 1e6),
    fp_mul=st.floats(0, 1e6),
    fp_div=st.floats(0, 1e4),
    fp_fma=st.floats(0, 1e6),
    fp_misc=st.floats(0, 1e5),
    loads=st.floats(0, 1e6),
    stores=st.floats(0, 1e6),
    quad_loads=st.floats(0, 1e5),
    int_ops=st.floats(0, 1e5),
    branches=st.floats(0, 1e5),
)

behaviours = st.builds(
    MemoryBehaviour,
    dcache_miss_ratio=st.floats(0, 0.3),
    tlb_miss_ratio=st.floats(0, 0.05),
    icache_miss_ratio=st.floats(0, 0.01),
    writeback_fraction=st.floats(0, 1.0),
)

profiles = st.builds(
    DependencyProfile,
    ilp=st.floats(0.0, 1.0),
    load_use_fraction=st.floats(0.0, 1.0),
)


class TestCycleModelProperties:
    @given(mixes, behaviours, profiles)
    @settings(max_examples=100, deadline=None)
    def test_cycles_nonnegative_and_decomposed(self, mix, mem, deps):
        r = CycleModel().execute(mix, mem, deps)
        assert r.cycles >= 0
        assert r.cycles == pytest.approx(
            r.issue_cycles + r.dependency_stall_cycles + r.memory_stall_cycles
        )

    @given(mixes, behaviours, profiles)
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_peak(self, mix, mem, deps):
        r = CycleModel().execute(mix, mem, deps)
        if r.cycles > 0:
            assert r.flops_per_cycle <= POWER2_590.peak_flops_per_cycle + 1e-9

    @given(mixes, behaviours, profiles, st.floats(1.1, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_linear_in_work(self, mix, mem, deps, factor):
        """Twice the work takes exactly twice the cycles (steady model)."""
        model = CycleModel()
        r1 = model.execute(mix, mem, deps)
        r2 = model.execute(mix.scaled(factor), mem, deps)
        assert r2.cycles == pytest.approx(factor * r1.cycles, rel=1e-9)

    @given(mixes, profiles, st.floats(0, 0.1), st.floats(0.11, 0.3))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_miss_ratio(self, mix, deps, low, high):
        model = CycleModel()
        r_low = model.execute(mix, MemoryBehaviour(dcache_miss_ratio=low), deps)
        r_high = model.execute(mix, MemoryBehaviour(dcache_miss_ratio=high), deps)
        assert r_high.cycles >= r_low.cycles - 1e-9

    @given(mixes, behaviours, st.floats(0.0, 0.45), st.floats(0.55, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_ilp(self, mix, mem, low_ilp, high_ilp):
        model = CycleModel()
        lu = 0.2
        slow = model.execute(mix, mem, DependencyProfile(ilp=low_ilp, load_use_fraction=lu))
        fast = model.execute(mix, mem, DependencyProfile(ilp=high_ilp, load_use_fraction=lu))
        assert fast.cycles <= slow.cycles + 1e-9

    @given(mixes, behaviours, profiles)
    @settings(max_examples=60, deadline=None)
    def test_miss_events_proportional(self, mix, mem, deps):
        r = CycleModel().execute(mix, mem, deps)
        assert r.dcache_misses == pytest.approx(mix.memory_insts * mem.dcache_miss_ratio)
        assert r.tlb_misses == pytest.approx(mix.memory_insts * mem.tlb_miss_ratio)
        assert r.dcache_writebacks <= r.dcache_misses + 1e-9
