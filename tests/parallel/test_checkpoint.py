"""Per-shard checkpoint files: fingerprints, atomicity, staleness."""

import os
import pickle

import numpy as np

from repro.core.study import StudyConfig
from repro.faults.profile import PROFILES
from repro.parallel.checkpoint import (
    CHECKPOINT_VERSION,
    config_fingerprint,
    load_shard_result,
    save_shard_result,
    shard_path,
)
from repro.parallel.plan import Shard
from repro.parallel.worker import ShardResult

CONFIG = StudyConfig(seed=3, n_days=4, n_nodes=16, n_users=6)


def tiny_result(index: int = 0) -> ShardResult:
    return ShardResult(
        shard=Shard(index=index, day_start=index, day_end=index + 1),
        samples=[],
        records=[],
        utilization_probes=[(0.0, 0)],
        submissions=[],
        demand_levels=np.zeros(1),
        events_processed=7,
    )


class TestFingerprint:
    def test_stable_for_identical_campaigns(self):
        assert config_fingerprint(CONFIG, 4) == config_fingerprint(
            StudyConfig(seed=3, n_days=4, n_nodes=16, n_users=6), 4
        )

    def test_sensitive_to_every_campaign_knob(self):
        base = config_fingerprint(CONFIG, 4)
        assert config_fingerprint(CONFIG, 5) != base  # shard plan
        for other in (
            StudyConfig(seed=4, n_days=4, n_nodes=16, n_users=6),
            StudyConfig(seed=3, n_days=5, n_nodes=16, n_users=6),
            StudyConfig(
                seed=3,
                n_days=4,
                n_nodes=16,
                n_users=6,
                fault_profile=PROFILES["mild"],
            ),
        ):
            assert config_fingerprint(other, 4) != base


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        fp = config_fingerprint(CONFIG, 4)
        result = tiny_result(2)
        path = save_shard_result(str(tmp_path), fp, result)
        assert path == shard_path(str(tmp_path), 2)
        loaded = load_shard_result(str(tmp_path), fp, 2)
        assert loaded is not None
        assert loaded.shard == result.shard
        assert loaded.events_processed == result.events_processed
        assert np.array_equal(loaded.demand_levels, result.demand_levels)

    def test_save_leaves_no_temp_files(self, tmp_path):
        save_shard_result(str(tmp_path), "fp", tiny_result())
        assert os.listdir(tmp_path) == ["shard-0000.pkl"]


class TestStaleness:
    """Every defect degrades to None — the caller recomputes, never
    trusts a stale or torn file."""

    def test_missing_file(self, tmp_path):
        assert load_shard_result(str(tmp_path), "fp", 0) is None

    def test_fingerprint_mismatch(self, tmp_path):
        save_shard_result(str(tmp_path), "fp-a", tiny_result())
        assert load_shard_result(str(tmp_path), "fp-b", 0) is None

    def test_wrong_shard_index_inside_envelope(self, tmp_path):
        save_shard_result(str(tmp_path), "fp", tiny_result(0))
        os.rename(shard_path(str(tmp_path), 0), shard_path(str(tmp_path), 1))
        assert load_shard_result(str(tmp_path), "fp", 1) is None

    def test_truncated_pickle(self, tmp_path):
        path = save_shard_result(str(tmp_path), "fp", tiny_result())
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        assert load_shard_result(str(tmp_path), "fp", 0) is None

    def test_version_mismatch(self, tmp_path):
        path = shard_path(str(tmp_path), 0)
        envelope = {
            "version": CHECKPOINT_VERSION + 1,
            "fingerprint": "fp",
            "shard_index": 0,
            "result": tiny_result(),
        }
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)
        assert load_shard_result(str(tmp_path), "fp", 0) is None

    def test_garbage_payload(self, tmp_path):
        with open(shard_path(str(tmp_path), 0), "wb") as fh:
            pickle.dump(["not", "an", "envelope"], fh)
        assert load_shard_result(str(tmp_path), "fp", 0) is None
