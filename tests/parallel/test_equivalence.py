"""Differential tests: serial vs parallel execution, byte for byte.

The determinism contract of :mod:`repro.parallel`: for a fixed
``(config, shard_days)``, the merged dataset is identical no matter how
many worker processes executed the shards.  These tests run the same
seed serially (1 worker, in-process) and at 2/4/8 workers and assert the
operator reports, the measured counter series, the ``--json`` summary
and the merged trace JSONL match exactly (span ids are already
namespaced identically on both sides — the namespacing depends on the
shard plan, not the workers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.export import dataset_summary, dataset_to_json
from repro.analysis.opsreport import campaign_ops_digest, day_ops, render_day_report
from repro.core.study import StudyConfig, run_study
from repro.parallel import run_parallel_study
from repro.tracing.export import spans_to_jsonl

CONFIG = StudyConfig(seed=3, n_days=6, n_nodes=32, n_users=10)
SHARD_DAYS = 1  # 6 shards: enough to occupy every worker count under test


def _assert_same_samples(a, b) -> None:
    sa, sb = a.collector.samples, b.collector.samples
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert x.time == y.time
        assert x.node_ids == y.node_ids
        assert x.missing == y.missing
        assert np.array_equal(x.matrix, y.matrix)


def _assert_same_intervals(a, b) -> None:
    ia, ib = a.collector.intervals(), b.collector.intervals()
    assert len(ia) == len(ib)
    for x, y in zip(ia, ib):
        assert (x.start, x.end, x.n_nodes) == (y.start, y.end, y.n_nodes)
        assert x.totals == y.totals


@pytest.fixture(scope="module")
def serial():
    """The 1-worker reference run of the shard plan."""
    return run_parallel_study(CONFIG, workers=1, shard_days=SHARD_DAYS, tracing=True)


@pytest.mark.parametrize("workers", [2, 4, 8])
def test_parallel_matches_serial(serial, workers):
    parallel = run_parallel_study(
        CONFIG, workers=workers, shard_days=SHARD_DAYS, tracing=True
    )

    # ops reports
    assert campaign_ops_digest(parallel) == campaign_ops_digest(serial)
    for day in range(CONFIG.n_days):
        assert render_day_report(day_ops(parallel, day)) == render_day_report(
            day_ops(serial, day)
        )

    # measured counter series
    _assert_same_samples(serial, parallel)
    _assert_same_intervals(serial, parallel)

    # the sp2-study --json artifact
    assert dataset_to_json(parallel) == dataset_to_json(serial)

    # the merged trace (span ids namespaced by shard, not by worker)
    assert spans_to_jsonl(parallel.tracer.spans) == spans_to_jsonl(serial.tracer.spans)

    # accounting identity
    assert [r.job_id for r in parallel.accounting.records] == [
        r.job_id for r in serial.accounting.records
    ]
    assert parallel.events_processed == serial.events_processed


def test_single_shard_plan_is_byte_identical_to_serial_path():
    """``shard_days >= n_days`` degenerates to the exact serial study:
    same trace streams, same samples, same reports."""
    legacy = run_study(
        CONFIG.seed, n_days=CONFIG.n_days, n_nodes=CONFIG.n_nodes, n_users=CONFIG.n_users
    )
    sharded = run_parallel_study(CONFIG, workers=2, shard_days=CONFIG.n_days)

    _assert_same_samples(legacy, sharded)
    _assert_same_intervals(legacy, sharded)
    assert campaign_ops_digest(legacy) == campaign_ops_digest(sharded)
    assert [r.job_id for r in legacy.accounting.records] == [
        r.job_id for r in sharded.accounting.records
    ]
    # Whole-summary identity modulo the telemetry block (the sharded
    # path rebuilds telemetry by offline replay, which documents a
    # jobs-active undercount near the horizon vs the live service).
    a, b = dataset_summary(legacy), dataset_summary(sharded)
    a.pop("telemetry"), b.pop("telemetry")
    assert a == b


def test_shard_plan_changes_realization_not_shape(serial):
    """Different shard widths are different (equally valid) draws of the
    same campaign: cadence and sample count are preserved even though
    the submissions differ."""
    other = run_parallel_study(CONFIG, workers=1, shard_days=3)
    assert len(other.collector.samples) == len(serial.collector.samples)
    assert [s.time for s in other.collector.samples] == [
        s.time for s in serial.collector.samples
    ]
