"""Shard planning and per-shard RNG spawning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.plan import DEFAULT_SHARD_DAYS, Shard, plan_shards
from repro.util.rng import RngStreams, spawn_stream
from repro.workload.traces import SECONDS_PER_DAY, generate_shard_trace, generate_trace


class TestPlanShards:
    def test_covers_campaign_contiguously(self):
        shards = plan_shards(270, 15)
        assert len(shards) == 18
        assert shards[0].day_start == 0
        assert shards[-1].day_end == 270
        for a, b in zip(shards, shards[1:]):
            assert a.day_end == b.day_start
        assert [s.index for s in shards] == list(range(18))

    def test_last_shard_short(self):
        shards = plan_shards(10, 4)
        assert [(s.day_start, s.day_end) for s in shards] == [(0, 4), (4, 8), (8, 10)]
        assert shards[-1].n_days == 2

    def test_single_shard_when_width_covers_campaign(self):
        assert plan_shards(30, 30) == [Shard(0, 0, 30)]
        assert plan_shards(30, 100) == [Shard(0, 0, 30)]

    def test_default_width(self):
        shards = plan_shards(30)
        assert shards[0].n_days == DEFAULT_SHARD_DAYS

    def test_plan_is_worker_free(self):
        # The plan API has no worker parameter at all — the layout is a
        # function of (n_days, shard_days) only.
        assert plan_shards(100, 7) == plan_shards(100, 7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(0)
        with pytest.raises(ValueError):
            plan_shards(10, 0)

    def test_start_seconds(self):
        assert plan_shards(10, 4)[1].start_seconds == 4 * SECONDS_PER_DAY


class TestSpawnStream:
    def test_deterministic_per_shard(self):
        a = spawn_stream(42, 3).get("workload.submissions")
        b = spawn_stream(42, 3).get("workload.submissions")
        assert a.random() == b.random()

    def test_shards_are_independent(self):
        draws = {
            shard: spawn_stream(42, shard).get("workload.submissions").random()
            for shard in range(4)
        }
        assert len(set(draws.values())) == 4

    def test_disjoint_from_campaign_root(self):
        root = RngStreams(42).get("workload.submissions").random()
        shard0 = spawn_stream(42, 0).get("workload.submissions").random()
        assert root != shard0

    def test_rejects_negative_shard(self):
        with pytest.raises(ValueError):
            spawn_stream(1, -1)

    def test_root_streams_unchanged_by_spawn_key_refactor(self):
        # The campaign-root tree must keep its historical sequences (all
        # calibrated outputs depend on them): same (seed, name), same draws.
        s1 = RngStreams(7).get("workload.demand")
        s2 = RngStreams(7, spawn_key=()).get("workload.demand")
        assert s1.random() == s2.random()


class TestShardTrace:
    def test_local_times_inside_shard(self):
        trace = generate_shard_trace(
            5, shard_id=2, day_start=4, day_end=6, n_days=10, n_nodes=32, n_users=8
        )
        assert trace.n_days == 2
        horizon = 2 * SECONDS_PER_DAY
        assert all(0.0 <= s.time < horizon for s in trace.submissions)

    def test_shard_content_independent_of_other_shards(self):
        # Shard 1 of a 3-shard plan == shard 1 of a 10-shard plan: the
        # draws depend on (seed, shard_id, day range) only.
        kw = dict(shard_id=1, day_start=2, day_end=4, n_nodes=32, n_users=8)
        a = generate_shard_trace(5, n_days=6, **kw)
        b = generate_shard_trace(5, n_days=20, **kw)
        assert [(s.time, s.user, s.app_name, s.nodes) for s in a.submissions] == [
            (s.time, s.user, s.app_name, s.nodes) for s in b.submissions
        ]

    def test_demand_levels_are_the_campaign_slice(self):
        full = generate_trace(5, n_days=6, n_nodes=32, n_users=8)
        shard = generate_shard_trace(
            5, shard_id=1, day_start=2, day_end=4, n_days=6, n_nodes=32, n_users=8
        )
        assert np.allclose(shard.demand_levels, full.demand_levels[2:4])

    def test_rejects_out_of_range_days(self):
        with pytest.raises(ValueError):
            generate_shard_trace(
                5, shard_id=0, day_start=4, day_end=3, n_days=10, n_nodes=32, n_users=8
            )
        with pytest.raises(ValueError):
            generate_shard_trace(
                5, shard_id=0, day_start=0, day_end=11, n_days=10, n_nodes=32, n_users=8
            )
