"""Property-based invariants over arbitrary seeds and shard splits.

Small campaigns (1–3 days, 16 nodes) keep each example fast; hypothesis
explores the seed/shard space.  The invariants are physical, not
calibrational: cumulative counters never run backwards, rates are
non-negative, and the paper's derived ratios stay finite and inside
generous plausibility bounds for *any* seed and *any* shard layout.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.study import StudyConfig
from repro.hpm.derived import workload_rates
from repro.parallel import run_parallel_study

SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run(seed: int, n_days: int, shard_days: int):
    cfg = StudyConfig(seed=seed, n_days=n_days, n_nodes=16, n_users=6)
    return run_parallel_study(cfg, workers=1, shard_days=shard_days)


@settings(**SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_days=st.integers(min_value=1, max_value=3),
    shard_days=st.integers(min_value=1, max_value=3),
)
def test_counters_monotone_and_rates_nonnegative(seed, n_days, shard_days):
    ds = _run(seed, n_days, shard_days)
    samples = ds.collector.samples

    # one sample per cadence point regardless of the shard split
    assert len(samples) == n_days * 96 + 1
    times = [s.time for s in samples]
    assert times == sorted(times) and len(set(times)) == len(times)

    # cumulative counters are monotone across every boundary
    for before, after in zip(samples, samples[1:]):
        if before.node_ids == after.node_ids:
            assert (after.matrix - before.matrix >= 0).all()

    # interval deltas (the merged counter series) are non-negative
    for iv in ds.collector.intervals():
        assert iv.seconds > 0
        assert all(v >= 0 for v in iv.totals.values())

    daily = ds.daily_gflops()
    assert len(daily) == n_days
    assert (daily >= 0).all()
    assert np.isfinite(daily).all()


@settings(**SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    shard_days=st.integers(min_value=1, max_value=2),
)
def test_derived_ratios_finite_and_plausible(seed, shard_days):
    ds = _run(seed, 2, shard_days)

    # job-level ratios (the §7 analyses)
    for rec in ds.accounting.records:
        fm = rec.flops_per_memory_inst
        assert math.isfinite(fm) and 0.0 <= fm <= 10.0
        fma = rec.fma_flop_fraction
        assert math.isfinite(fma) and 0.0 <= fma <= 1.0

    # interval-level FPU balance (paper: ≈1.7 on busy days)
    for iv in ds.collector.intervals():
        if iv.n_nodes <= 0 or iv.seconds <= 0:
            continue
        rates = workload_rates(iv.totals, iv.seconds, iv.n_nodes)
        if rates.mips_fp_unit1 > 0:
            ratio = rates.fpu_ratio
            assert math.isfinite(ratio) and 0.0 < ratio < 20.0
