"""Merge bookkeeping on synthetic shard results."""

from __future__ import annotations

import numpy as np

from repro.hpm.collector import SystemSample
from repro.parallel.merge import (
    JOB_ID_STRIDE,
    SPAN_ID_STRIDE,
    merge_probes,
    merge_records,
    merge_samples,
    merge_spans,
)
from repro.parallel.plan import Shard
from repro.parallel.worker import ShardResult
from repro.pbs.job import JobRecord
from repro.tracing.span import Span
from repro.workload.traces import SECONDS_PER_DAY


def _sample(time: float, values: list[int]) -> SystemSample:
    matrix = np.array([[v, v * 2] for v in values], dtype=np.int64)
    return SystemSample(time=time, node_ids=tuple(range(len(values))), matrix=matrix)


def _result(index: int, day_start: int, day_end: int, **kw) -> ShardResult:
    defaults = dict(
        samples=[],
        records=[],
        utilization_probes=[],
        submissions=[],
        demand_levels=np.zeros(day_end - day_start),
        events_processed=0,
    )
    defaults.update(kw)
    return ShardResult(shard=Shard(index, day_start, day_end), **defaults)


class TestMergeSamples:
    def test_rebase_keeps_counters_monotone_across_shards(self):
        # Shard 0 ends with cumulative counters (5, 10) per node; shard 1
        # starts from local zero again.  The merge must lift shard 1 onto
        # shard 0's final values.
        day = SECONDS_PER_DAY
        r0 = _result(0, 0, 1, samples=[_sample(0.0, [0, 0]), _sample(day, [5, 7])])
        r1 = _result(1, 1, 2, samples=[_sample(0.0, [0, 0]), _sample(day, [3, 4])])
        merged = merge_samples([r0, r1])

        assert [s.time for s in merged] == [0.0, day, 2 * day]
        assert merged[1].matrix[0, 0] == 5
        assert merged[2].matrix[0, 0] == 5 + 3
        assert merged[2].matrix[1, 1] == (7 + 4) * 2
        for before, after in zip(merged, merged[1:]):
            assert (after.matrix - before.matrix >= 0).all()

    def test_duplicate_baselines_dropped(self):
        day = SECONDS_PER_DAY
        r0 = _result(0, 0, 1, samples=[_sample(0.0, [0]), _sample(day, [5])])
        r1 = _result(1, 1, 2, samples=[_sample(0.0, [0]), _sample(day, [3])])
        merged = merge_samples([r0, r1])
        # one sample per cadence point: shard 1's local t=0 baseline is
        # the same instant as shard 0's horizon sample.
        times = [s.time for s in merged]
        assert times == sorted(set(times))

    def test_missing_node_keeps_last_base(self):
        day = SECONDS_PER_DAY
        # shard 0's final sample misses node 1; its base must survive
        # from the last sample it appeared in.
        partial = SystemSample(
            time=day,
            node_ids=(0,),
            matrix=np.array([[5, 10]], dtype=np.int64),
            missing=(1,),
        )
        r0 = _result(0, 0, 1, samples=[_sample(0.0, [0, 0]), _sample(day / 2, [2, 6]), partial])
        r1 = _result(1, 1, 2, samples=[_sample(0.0, [0, 0]), _sample(day, [1, 1])])
        merged = merge_samples([r0, r1])
        last = merged[-1]
        assert last.node_ids == (0, 1)
        assert last.matrix[0, 0] == 5 + 1  # node 0: final base 5
        assert last.matrix[1, 0] == 6 + 1  # node 1: last-seen base 6


class TestMergeRecords:
    def test_ids_and_times_namespaced(self):
        rec = JobRecord(
            job_id=3,
            user=1,
            app_name="cfd",
            nodes_requested=4,
            node_ids=(0, 1, 2, 3),
            submit_time=10.0,
            start_time=20.0,
            end_time=30.0,
        )
        r1 = _result(1, 2, 4, records=[rec])
        merged = merge_records([r1])
        out = merged[0]
        assert out.job_id == JOB_ID_STRIDE + 3
        offset = 2 * SECONDS_PER_DAY
        assert (out.submit_time, out.start_time, out.end_time) == (
            10.0 + offset,
            20.0 + offset,
            30.0 + offset,
        )
        # shard 0 is untouched
        r0 = _result(0, 0, 2, records=[rec])
        assert merge_records([r0])[0].job_id == 3


class TestMergeProbes:
    def test_offsets_and_boundary_dedup(self):
        day = SECONDS_PER_DAY
        r0 = _result(0, 0, 1, utilization_probes=[(0.0, 0), (day, 5)])
        r1 = _result(1, 1, 2, utilization_probes=[(0.0, 0), (day, 3)])
        merged = merge_probes([r0, r1])
        assert merged == [(0.0, 0), (day, 5), (2 * day, 3)]


class TestMergeSpans:
    def test_ids_rebased_into_disjoint_ranges(self):
        s0 = Span(span_id="s1", name="campaign", category="campaign", start=0.0, end=10.0)
        s1a = Span(span_id="s1", name="campaign", category="campaign", start=0.0, end=10.0)
        s1b = Span(
            span_id="s2", name="ev", category="sim.event", start=1.0, end=2.0, parent_id="s1"
        )
        day = SECONDS_PER_DAY
        merged = merge_spans(
            [
                _result(0, 0, 1, spans=[s0]),
                _result(1, 1, 2, spans=[s1a, s1b]),
            ]
        )
        ids = [s.span_id for s in merged]
        assert ids == ["s1", f"s{SPAN_ID_STRIDE + 1}", f"s{SPAN_ID_STRIDE + 2}"]
        assert merged[2].parent_id == f"s{SPAN_ID_STRIDE + 1}"
        assert merged[1].start == day and merged[1].end == day + 10.0
        # shard roots are tagged in multi-shard merges
        assert merged[1].args["shard"] == 1
        assert merged[0].args["shard"] == 0

    def test_single_shard_untouched(self):
        span = Span(span_id="s9", name="campaign", category="campaign", start=0.0, end=1.0)
        merged = merge_spans([_result(0, 0, 3, spans=[span])])
        assert merged[0] is span
        assert "shard" not in merged[0].args


class TestSpanRebase:
    def test_rebase_copies(self):
        span = Span(
            span_id="s4",
            name="x",
            category="c",
            start=1.0,
            end=2.0,
            parent_id="s2",
            args={"k": 1},
        )
        out = span.rebase(time_offset=10.0, id_offset=100)
        assert (out.span_id, out.parent_id) == ("s104", "s102")
        assert (out.start, out.end) == (11.0, 12.0)
        out.args["k"] = 2
        assert span.args["k"] == 1  # args copied, not shared

    def test_zero_offset_identity_values(self):
        span = Span(span_id="s4", name="x", category="c", start=1.0, end=None)
        out = span.rebase()
        assert out.span_id == "s4" and out.end is None
