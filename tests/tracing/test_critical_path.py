"""Critical-path analyzer on hand-built and campaign span trees."""

from repro.tracing import Span, analyze_jobs, machine_attribution, render_critical_path
from repro.tracing.span import CAT_JOB, CAT_JOB_PHASE, CAT_JOB_STATE


def _job_tree(job_id=1, *, nodes=4, queued=50.0, phases=()):
    """A job root with queued/running states and phase segments."""
    start = 0.0
    run_start = start + queued
    wall = sum(d for _, d in phases) or 100.0
    spans = [
        Span(
            f"j{job_id}", f"job-{job_id}", CAT_JOB, start, run_start + wall,
            None, {"job_id": job_id, "app": "cfd", "nodes": nodes},
        ),
        Span(f"j{job_id}q", "queued", CAT_JOB_STATE, start, run_start, f"j{job_id}"),
        Span(
            f"j{job_id}r", "running", CAT_JOB_STATE, run_start, run_start + wall,
            f"j{job_id}",
        ),
    ]
    cursor = run_start
    for i, (kind, dur) in enumerate(phases):
        spans.append(
            Span(
                f"j{job_id}p{i}", kind, CAT_JOB_PHASE, cursor, cursor + dur,
                f"j{job_id}r",
            )
        )
        cursor += dur
    return spans


class TestAttribution:
    def test_phases_become_breakdown(self):
        spans = _job_tree(phases=[("compute", 70.0), ("switch-wait", 20.0), ("io", 10.0)])
        (path,) = analyze_jobs(spans)
        assert path.breakdown == {"compute": 70.0, "switch-wait": 20.0, "io": 10.0}
        assert path.wall_seconds == 100.0
        assert path.queue_wait_seconds == 50.0
        assert path.dominant == "compute"
        assert abs(path.fraction("switch-wait") - 0.2) < 1e-12

    def test_uncovered_wall_time_credited_to_compute(self):
        # No phase segments at all: the whole running span is compute.
        spans = _job_tree(phases=[])
        (path,) = analyze_jobs(spans)
        assert path.breakdown == {"compute": 100.0}

    def test_paging_dominant_job(self):
        spans = _job_tree(phases=[("compute", 30.0), ("paging", 70.0)])
        (path,) = analyze_jobs(spans)
        assert path.dominant == "paging"

    def test_jobs_sorted_by_id(self):
        spans = _job_tree(2) + _job_tree(1)
        paths = analyze_jobs(spans)
        assert [p.job_id for p in paths] == [1, 2]


class TestChain:
    def test_chain_descends_longest_child(self):
        spans = _job_tree(phases=[("compute", 80.0), ("io", 20.0)])
        (path,) = analyze_jobs(spans)
        names = [name for name, _ in path.chain]
        assert names == ["job-1", "running", "compute"]

    def test_chain_prefers_running_over_queue(self):
        # Long queue wait, short run: chain still follows the longer leg.
        spans = _job_tree(queued=500.0, phases=[("compute", 100.0)])
        (path,) = analyze_jobs(spans)
        assert path.chain[1][0] == "queued"


class TestMachineView:
    def test_attribution_weighted_by_nodes(self):
        a = _job_tree(1, nodes=1, phases=[("compute", 100.0)])
        b = _job_tree(2, nodes=9, phases=[("io", 100.0)])
        totals = machine_attribution(analyze_jobs(a + b))
        assert totals["compute"] == 100.0
        assert totals["io"] == 900.0

    def test_render_mentions_every_nonzero_bucket(self):
        spans = _job_tree(phases=[("compute", 60.0), ("paging", 40.0)])
        text = render_critical_path(analyze_jobs(spans)[0])
        assert "compute" in text and "paging" in text
        assert "switch-wait" not in text
        assert "critical path:" in text
