"""Exporter formats: JSONL roundtrip and Chrome trace-event schema."""

import json

from repro.tracing import (
    Span,
    read_jsonl,
    spans_to_chrome,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.tracing.span import CAT_HPM, CAT_JOB, CAT_JOB_STATE


def _sample_spans():
    return [
        Span("s1", "job-1", CAT_JOB, 0.0, 100.0, None, {"job_id": 1}),
        Span("s2", "queued", CAT_JOB_STATE, 0.0, 10.0, "s1"),
        Span("s3", "running", CAT_JOB_STATE, 10.0, 100.0, "s1"),
        Span("s4", "cron-pass", CAT_HPM, 900.0, 900.0, None, {"nodes": 4}),
    ]


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = write_jsonl(_sample_spans(), tmp_path / "t.jsonl")
        assert read_jsonl(path) == _sample_spans()

    def test_one_sorted_json_object_per_line(self):
        text = spans_to_jsonl(_sample_spans())
        lines = text.strip().split("\n")
        assert len(lines) == 4
        for line in lines:
            row = json.loads(line)
            assert list(row) == sorted(row)

    def test_serialization_is_order_independent(self):
        spans = _sample_spans()
        assert spans_to_jsonl(spans) == spans_to_jsonl(list(reversed(spans)))


class TestChrome:
    def test_export_passes_own_validator(self):
        assert validate_chrome_trace(spans_to_chrome(_sample_spans())) == []

    def test_job_spans_get_their_own_pid_track(self):
        obj = spans_to_chrome(_sample_spans())
        by_name = {
            ev["name"]: ev for ev in obj["traceEvents"] if ev["ph"] == "X"
        }
        # The job tree lands on pid = job_id; machine spans on pid 0.
        assert by_name["job-1"]["pid"] == 1
        assert by_name["queued"]["pid"] == 1
        assert by_name["running"]["pid"] == 1
        assert by_name["cron-pass"]["pid"] == 0

    def test_timestamps_are_microseconds(self):
        obj = spans_to_chrome(_sample_spans())
        running = next(
            ev for ev in obj["traceEvents"]
            if ev["ph"] == "X" and ev["name"] == "running"
        )
        assert running["ts"] == 10.0 * 1e6
        assert running["dur"] == 90.0 * 1e6

    def test_metadata_names_tracks(self):
        obj = spans_to_chrome(_sample_spans())
        meta = [ev for ev in obj["traceEvents"] if ev["ph"] == "M"]
        names = {ev["name"] for ev in meta}
        assert "process_name" in names and "thread_name" in names

    def test_write_is_deterministic(self, tmp_path):
        a = write_chrome_trace(_sample_spans(), tmp_path / "a.json")
        b = write_chrome_trace(_sample_spans(), tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()
        assert validate_chrome_trace(json.loads(a.read_text())) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) != []

    def test_rejects_bad_phase(self):
        obj = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "tid": 0}]}
        assert any("ph" in e for e in validate_chrome_trace(obj))

    def test_rejects_complete_event_without_duration(self):
        obj = {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1}]}
        assert validate_chrome_trace(obj) != []

    def test_rejects_negative_duration(self):
        obj = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1, "dur": -5}
            ]
        }
        assert validate_chrome_trace(obj) != []
