"""Tracer semantics: nesting, clocks, zero-cost disabled mode, bus."""

import pytest

from repro.telemetry.bus import TOPIC_SPAN, EventBus
from repro.tracing import NULL_TRACER, Span, Tracer, span_index
from repro.tracing.tracer import _NULL_SPAN


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestNesting:
    def test_context_manager_nests_parent_child(self):
        clock = FakeClock()
        tr = Tracer(clock)
        with tr.span("outer", "cat") as outer:
            clock.t = 1.0
            with tr.span("inner", "cat") as inner:
                clock.t = 2.0
            clock.t = 3.0
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert (inner.start, inner.end) == (1.0, 2.0)
        assert (outer.start, outer.end) == (0.0, 3.0)

    def test_siblings_share_parent(self):
        tr = Tracer(FakeClock())
        with tr.span("root", "cat") as root:
            with tr.span("a", "cat") as a:
                pass
            with tr.span("b", "cat") as b:
                pass
        assert a.parent_id == root.span_id == b.parent_id
        by_id, children = span_index(tr.spans)
        assert [s.name for s in children[root.span_id]] == ["a", "b"]
        assert children[None] == [root]

    def test_explicit_begin_finish_crosses_scopes(self):
        clock = FakeClock()
        tr = Tracer(clock)
        long_lived = tr.begin("job", "cat", parent=None)
        clock.t = 5.0
        with tr.span("event", "cat"):
            pass
        clock.t = 9.0
        tr.finish(long_lived)
        assert long_lived.duration == 9.0
        # The lexical span is NOT a child of the explicit one: begin()
        # does not push onto the context stack.
        event = next(s for s in tr.spans if s.name == "event")
        assert event.parent_id is None

    def test_explicit_parent_overrides_stack(self):
        tr = Tracer(FakeClock())
        root = tr.begin("root", "cat", parent=None)
        with tr.span("top", "cat"):
            with tr.span("child", "cat", parent=root) as child:
                pass
        assert child.parent_id == root.span_id

    def test_sequential_ids_from_one(self):
        tr = Tracer(FakeClock())
        a = tr.begin("a", "cat")
        b = tr.begin("b", "cat")
        assert (a.span_id, b.span_id) == ("s1", "s2")


class TestClockAndOrdering:
    def test_spans_ordered_in_sim_time(self):
        clock = FakeClock()
        tr = Tracer(clock)
        for i in range(5):
            clock.t = float(i)
            with tr.span(f"e{i}", "cat"):
                clock.t = float(i) + 0.5
        starts = [s.start for s in tr.spans]
        assert starts == sorted(starts)
        assert all(s.end >= s.start for s in tr.spans)

    def test_finish_rejects_end_before_start(self):
        clock = FakeClock(10.0)
        tr = Tracer(clock)
        s = tr.begin("x", "cat")
        with pytest.raises(ValueError):
            tr.finish(s, end=5.0)

    def test_double_finish_rejected(self):
        tr = Tracer(FakeClock())
        s = tr.begin("x", "cat")
        tr.finish(s)
        with pytest.raises(ValueError):
            tr.finish(s)

    def test_record_makes_closed_span(self):
        tr = Tracer(FakeClock(100.0))
        s = tr.record("io", "fs", duration=2.5, start=90.0, bytes=4096)
        assert (s.start, s.end) == (90.0, 92.5)
        assert s.args["bytes"] == 4096
        assert s in tr.spans


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(FakeClock(), enabled=False)
        with tr.span("a", "cat") as s:
            inner = tr.begin("b", "cat")
            tr.finish(inner)
            tr.record("c", "cat", duration=1.0, start=0.0)
        assert s is _NULL_SPAN and inner is _NULL_SPAN
        assert tr.spans == []
        assert tr.current is None

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_decorator_zero_cost_when_disabled(self):
        tr = Tracer(FakeClock(), enabled=False)

        @tr.trace("work", "cat")
        def f(x):
            return x * 2

        assert f(21) == 42
        assert tr.spans == []


class TestDecoratorAndBus:
    def test_decorator_records_span(self):
        clock = FakeClock()
        tr = Tracer(clock)

        @tr.trace("work", "cat")
        def f():
            clock.t = 3.0
            return "ok"

        assert f() == "ok"
        assert len(tr.spans) == 1
        assert tr.spans[0].name == "work"
        assert tr.spans[0].duration == 3.0

    def test_finished_spans_publish_to_bus(self):
        bus = EventBus()
        seen = []
        bus.subscribe(TOPIC_SPAN, seen.append)
        tr = Tracer(FakeClock(), bus=bus)
        with tr.span("outer", "cat"):
            with tr.span("inner", "cat"):
                pass
        assert [ev.span.name for ev in seen] == ["inner", "outer"]

    def test_span_roundtrips_through_dict(self):
        s = Span(
            span_id="s9", name="x", category="cat", start=1.0, end=2.0,
            parent_id="s1", args={"k": 3},
        )
        assert Span.from_dict(s.to_dict()) == s
