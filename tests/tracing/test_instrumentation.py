"""Instrumented campaign: one tree per job, byte-stable untraced output."""

import pytest

from repro.analysis.opsreport import campaign_ops_digest, day_ops, render_day_report
from repro.cluster.filesystem import NFSFilesystem
from repro.cluster.switch import HighPerformanceSwitch
from repro.core.study import StudyConfig, WorkloadStudy
from repro.hpm.derived import workload_rates
from repro.telemetry.rules import AnomalyEngine, Observation, PagingRule
from repro.tracing import Tracer, span_index, spans_to_jsonl
from repro.tracing.span import (
    CAT_CAMPAIGN,
    CAT_FS,
    CAT_JOB_PHASE,
    CAT_JOB_STATE,
    CAT_SWITCH,
)

_CFG = StudyConfig(seed=42, n_days=1, n_nodes=16, n_users=6)


def _traced_run():
    tracer = Tracer()
    dataset = WorkloadStudy(_CFG, tracer=tracer).run()
    return tracer, dataset


@pytest.fixture(scope="module")
def traced():
    return _traced_run()


class TestJobTrees:
    def test_one_tree_per_accounted_job(self, traced):
        tracer, dataset = traced
        roots = tracer.job_roots()
        assert len(roots) > 0
        assert len(roots) == len(dataset.accounting)
        assert [r.args["job_id"] for r in roots] == sorted(
            rec.job_id for rec in dataset.accounting.records
        )

    def test_root_args_describe_the_job(self, traced):
        tracer, dataset = traced
        by_id = {rec.job_id: rec for rec in dataset.accounting.records}
        for root in tracer.job_roots():
            rec = by_id[root.args["job_id"]]
            assert root.args["app"] == rec.app_name
            assert root.args["nodes"] == rec.nodes_requested
            assert root.args["user"] == rec.user
            assert root.args["mflops"] == pytest.approx(rec.total_mflops, abs=1e-3)

    def test_lifecycle_states_partition_the_root(self, traced):
        tracer, _ = traced
        _, children = span_index(tracer.spans)
        for root in tracer.job_roots():
            states = {
                s.name: s
                for s in children[root.span_id]
                if s.category == CAT_JOB_STATE
            }
            assert set(states) == {"queued", "running"}
            q, r = states["queued"], states["running"]
            assert q.start == root.start
            assert q.end == r.start  # queued hands off to running exactly
            assert r.end == root.end

    def test_phase_segments_cover_the_running_span(self, traced):
        tracer, _ = traced
        _, children = span_index(tracer.spans)
        covered_any = False
        for root in tracer.job_roots():
            running = next(
                s for s in children[root.span_id]
                if s.category == CAT_JOB_STATE and s.name == "running"
            )
            phases = [
                s for s in children.get(running.span_id, [])
                if s.category == CAT_JOB_PHASE
            ]
            if not phases:
                continue
            covered_any = True
            assert sum(p.duration for p in phases) == pytest.approx(
                running.duration, rel=1e-9
            )
            # Laid end-to-end, no overlap.
            cursor = running.start
            for p in sorted(phases, key=lambda s: s.start):
                assert p.start == pytest.approx(cursor)
                cursor = p.end
        assert covered_any, "at least one job must carry phase segments"

    def test_campaign_root_encloses_everything(self, traced):
        tracer, dataset = traced
        (campaign,) = [s for s in tracer.spans if s.category == CAT_CAMPAIGN]
        assert campaign.args["seed"] == dataset.config.seed
        assert campaign.parent_id is None
        for span in tracer.spans:
            if span is not campaign:
                assert span.end <= campaign.end


class TestTelemetryIntegration:
    def test_service_counts_every_span(self, traced):
        tracer, dataset = traced
        assert dataset.telemetry.spans_seen == len(tracer.spans)

    def test_every_job_root_indexed_by_service(self, traced):
        tracer, dataset = traced
        expected = {r.args["job_id"]: r.span_id for r in tracer.job_roots()}
        assert dataset.telemetry.job_span_ids == expected

    def test_alerts_reference_the_enclosing_span(self):
        tracer = Tracer()
        engine = AnomalyEngine(rules=[PagingRule()], tracer=tracer)
        pathological = workload_rates(
            {"user.fxu0": 2_000_000_000, "system.fxu0": 1_500_000_000}, 900.0, 1
        )
        obs = Observation(time=900.0, rates=pathological, nodes_reporting=1)
        with tracer.span("cron-pass", "hpm.collect") as span:
            (alert,) = engine.observe(obs)
        assert alert.span_id == span.span_id

    def test_alerts_without_tracer_have_no_span(self):
        engine = AnomalyEngine(rules=[PagingRule()])
        pathological = workload_rates(
            {"user.fxu0": 2_000_000_000, "system.fxu0": 1_500_000_000}, 900.0, 1
        )
        (alert,) = engine.observe(
            Observation(time=900.0, rates=pathological, nodes_reporting=1)
        )
        assert alert.span_id is None


class TestCostModelSpans:
    def test_switch_records_message_spans(self):
        tracer = Tracer()
        switch = HighPerformanceSwitch(tracer=tracer)
        cost = switch.send(1e6)
        (span,) = tracer.spans
        assert span.category == CAT_SWITCH
        assert span.duration == pytest.approx(cost.seconds)
        assert span.args["bytes"] == 1e6

    def test_filesystem_records_io_spans(self):
        tracer = Tracer()
        fs = NFSFilesystem(HighPerformanceSwitch(), tracer=tracer)
        seconds = fs.read(owner=3, nbytes=2e6)
        fs.write(owner=3, nbytes=1e6)
        read_span, write_span = tracer.spans
        assert (read_span.name, write_span.name) == ("read", "write")
        assert read_span.category == write_span.category == CAT_FS
        assert read_span.duration == pytest.approx(seconds)


class TestOverheadIsZero:
    def test_determinism_same_seed_same_trace(self, traced):
        tracer, _ = traced
        again, _ = _traced_run()
        assert spans_to_jsonl(tracer.spans) == spans_to_jsonl(again.spans)

    def test_opsreport_byte_identical_traced_vs_untraced(self, traced):
        """The ISSUE's overhead bar: tracing must not perturb results."""
        _, with_trace = traced
        without = WorkloadStudy(_CFG).run()
        assert without.tracer is None
        assert without.telemetry.spans_seen == 0
        for day in range(_CFG.n_days):
            assert render_day_report(day_ops(with_trace, day)) == render_day_report(
                day_ops(without, day)
            )
        assert campaign_ops_digest(with_trace) == campaign_ops_digest(without)

    def test_measured_data_identical_traced_vs_untraced(self, traced):
        _, with_trace = traced
        without = WorkloadStudy(_CFG).run()
        assert (
            with_trace.daily_gflops().tolist() == without.daily_gflops().tolist()
        )
        assert len(with_trace.accounting) == len(without.accounting)
        assert with_trace.events_processed == without.events_processed
