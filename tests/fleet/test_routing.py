"""Routing properties: conservation, capacity, and degeneracy.

The contracts :mod:`repro.fleet.routing` promises, pinned as hypothesis
properties over random fleet shapes:

* **conservation** — routed member traces partition the fleet stream;
  job counts sum to the fleet total under every policy;
* **capacity** — a routed job never exceeds its member's node count;
* **degeneracy** — a single-member fleet's trace is the single-machine
  trace, byte for byte, under every policy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.routing import generate_fleet_trace
from repro.fleet.spec import ROUTING_POLICIES, FleetSpec, MemberSpec

NODE_COUNTS = st.sampled_from([16, 32, 64, 144])

members = st.lists(NODE_COUNTS, min_size=1, max_size=4).map(
    lambda counts: tuple(
        MemberSpec(name=f"m{i}", n_nodes=n) for i, n in enumerate(counts)
    )
)

fleet_specs = st.builds(
    FleetSpec,
    members=members,
    seed=st.integers(min_value=0, max_value=2**16),
    n_days=st.integers(min_value=1, max_value=3),
    n_users=st.integers(min_value=2, max_value=12),
    routing=st.sampled_from(ROUTING_POLICIES),
)


class TestRoutingProperties:
    @given(fleet_specs)
    @settings(max_examples=25, deadline=None)
    def test_routed_jobs_sum_to_fleet_demand(self, spec):
        trace = generate_fleet_trace(spec)
        assert sum(trace.routed_counts().values()) == trace.total_submissions
        # ... and the assignment record agrees with the per-member traces.
        for name, count in trace.routed_counts().items():
            assert trace.assignments.count(name) == count

    @given(fleet_specs)
    @settings(max_examples=25, deadline=None)
    def test_routed_jobs_fit_their_member(self, spec):
        trace = generate_fleet_trace(spec)
        for member in spec.members:
            for sub in trace.member_traces[member.name].submissions:
                assert 0 < sub.nodes <= member.n_nodes
                assert 0 <= sub.time < spec.n_days * 86_400.0

    @given(fleet_specs)
    @settings(max_examples=10, deadline=None)
    def test_member_traces_carry_fleet_demand_levels(self, spec):
        trace = generate_fleet_trace(spec)
        for member_trace in trace.member_traces.values():
            assert np.array_equal(member_trace.demand_levels, trace.demand_levels)
            assert member_trace.seed == spec.seed
            assert member_trace.n_days == spec.n_days


class TestSingleMemberDegeneracy:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_days=st.integers(min_value=1, max_value=4),
        n_nodes=NODE_COUNTS,
        routing=st.sampled_from(ROUTING_POLICIES),
    )
    @settings(max_examples=15, deadline=None)
    def test_degenerates_to_serial_workload_trace(
        self, seed, n_days, n_nodes, routing
    ):
        from repro.workload.traces import generate_trace

        spec = FleetSpec(
            members=(MemberSpec(name="solo", n_nodes=n_nodes),),
            seed=seed,
            n_days=n_days,
            n_users=8,
            routing=routing,
        )
        fleet = generate_fleet_trace(spec).member_traces["solo"]
        serial = generate_trace(seed, n_days=n_days, n_nodes=n_nodes, n_users=8)
        assert len(fleet.submissions) == len(serial.submissions)
        for a, b in zip(fleet.submissions, serial.submissions):
            assert (a.time, a.user, a.app_name, a.nodes) == (
                b.time,
                b.user,
                b.app_name,
                b.nodes,
            )
            assert a.profile.walltime_seconds == b.profile.walltime_seconds
            assert a.profile.mflops_per_node == b.profile.mflops_per_node
        assert np.array_equal(fleet.demand_levels, serial.demand_levels)


class TestPolicyShapes:
    """Deterministic spot checks of each policy's routing character."""

    def _spec(self, routing: str) -> FleetSpec:
        return FleetSpec(
            members=(
                MemberSpec(name="small", n_nodes=16),
                MemberSpec(name="big", n_nodes=144),
            ),
            seed=11,
            n_days=2,
            n_users=10,
            routing=routing,
        )

    def test_policies_route_differently_but_conserve(self):
        counts = {}
        for routing in ROUTING_POLICIES:
            trace = generate_fleet_trace(self._spec(routing))
            counts[routing] = trace.routed_counts()
            assert set(counts[routing]) == {"small", "big"}
        # Round-robin alternates; home-center concentrates by capacity
        # weight.  They cannot produce identical splits on this shape.
        assert len({tuple(sorted(c.items())) for c in counts.values()}) > 1

    def test_big_jobs_avoid_the_small_center(self):
        for routing in ROUTING_POLICIES:
            trace = generate_fleet_trace(self._spec(routing))
            for sub in trace.member_traces["small"].submissions:
                assert sub.nodes <= 16

    def test_least_loaded_balances_load_fraction(self):
        trace = generate_fleet_trace(self._spec("least-loaded"))
        capacity = {"small": 16.0, "big": 144.0}
        load = {
            name: sum(s.node_seconds for s in t.submissions) / capacity[name]
            for name, t in trace.member_traces.items()
        }
        # Balanced within a factor a couple of big jobs can explain.
        hi, lo = max(load.values()), min(load.values())
        assert hi <= 3.0 * max(lo, 1e-9)
