"""FleetSpec / MemberSpec validation and round-trip behavior."""

import pytest

from repro.fleet.spec import PRESETS, FleetSpec, MemberSpec, preset


def two_members():
    return (
        MemberSpec(name="west", n_nodes=32),
        MemberSpec(name="east", n_nodes=64, memory_mb=64, fault_profile="mild"),
    )


class TestMemberValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name cannot be empty"):
            MemberSpec(name="", n_nodes=16)

    @pytest.mark.parametrize("n", [0, -4])
    def test_nonpositive_nodes_rejected(self, n):
        with pytest.raises(ValueError, match="n_nodes must be positive"):
            MemberSpec(name="x", n_nodes=n)

    def test_unknown_fault_profile_names_available(self):
        with pytest.raises(ValueError, match="unknown fault profile 'bogus'") as exc:
            MemberSpec(name="x", n_nodes=16, fault_profile="bogus")
        assert "mild" in str(exc.value)

    @pytest.mark.parametrize(
        "field", ["memory_mb", "tlb_entries", "switch_latency_us", "switch_bandwidth_mb_s"]
    )
    def test_nonpositive_overrides_rejected(self, field):
        with pytest.raises(ValueError, match=f"{field} must be positive"):
            MemberSpec(name="x", n_nodes=16, **{field: 0})

    def test_default_member_uses_reference_machine(self):
        m = MemberSpec(name="x", n_nodes=16)
        assert m.machine_config() is None
        assert m.switch_config() is None
        assert m.fault_profile_obj() is None

    def test_overrides_produce_configs(self):
        m = MemberSpec(
            name="x",
            n_nodes=16,
            memory_mb=64,
            tlb_entries=1024,
            switch_latency_us=30.0,
            switch_bandwidth_mb_s=68.0,
        )
        cfg = m.machine_config()
        assert cfg.memory_bytes == 64 * 1024 * 1024
        assert cfg.tlb.entries == 1024
        sw = m.switch_config()
        assert sw.latency_seconds == pytest.approx(30e-6)
        assert sw.bandwidth_bytes_per_s == pytest.approx(68e6)


class TestFleetValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            FleetSpec(members=())

    def test_duplicate_member_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate member names: west"):
            FleetSpec(
                members=(
                    MemberSpec(name="west", n_nodes=16),
                    MemberSpec(name="west", n_nodes=32),
                )
            )

    @pytest.mark.parametrize("field", ["n_days", "n_users"])
    def test_nonpositive_scalars_rejected(self, field):
        with pytest.raises(ValueError, match=f"{field} must be positive"):
            FleetSpec(members=two_members(), **{field: 0})

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy 'random'") as exc:
            FleetSpec(members=two_members(), routing="random")
        assert "least-loaded" in str(exc.value)

    def test_nonpositive_demand_mean_rejected(self):
        with pytest.raises(ValueError, match="demand_mean must be positive"):
            FleetSpec(members=two_members(), demand_mean=0.0)

    def test_total_nodes_and_member_lookup(self):
        spec = FleetSpec(members=two_members())
        assert spec.total_nodes == 96
        assert spec.member("east").memory_mb == 64
        with pytest.raises(KeyError):
            spec.member("nowhere")


class TestMemberConfig:
    def test_member_inherits_fleet_scalars(self):
        spec = FleetSpec(members=two_members(), seed=9, n_days=7, n_users=11)
        cfg = spec.member_config(spec.member("east"))
        assert cfg.seed == 9
        assert cfg.n_days == 7
        assert cfg.n_users == 11
        assert cfg.n_nodes == 64
        assert cfg.machine_config.memory_bytes == 64 * 1024 * 1024
        assert cfg.fault_profile is not None and not cfg.fault_profile.is_null

    def test_plain_member_config_matches_single_machine_defaults(self):
        spec = FleetSpec(members=(MemberSpec(name="solo", n_nodes=144),), seed=2)
        cfg = spec.member_config(spec.members[0])
        assert cfg.machine_config is None
        assert cfg.switch_config is None
        assert cfg.fault_profile is None


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = FleetSpec(
            members=two_members(), name="pair", seed=4, n_days=9, routing="round-robin"
        )
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fleet_key_rejected(self):
        data = FleetSpec(members=two_members()).to_dict()
        data["colour"] = "red"
        with pytest.raises(ValueError, match="unknown fleet spec keys: colour"):
            FleetSpec.from_dict(data)

    def test_unknown_member_key_rejected(self):
        data = FleetSpec(members=two_members()).to_dict()
        data["members"][0]["gpu_count"] = 8
        with pytest.raises(ValueError, match="unknown member spec keys: gpu_count"):
            FleetSpec.from_dict(data)

    def test_missing_members_rejected(self):
        with pytest.raises(ValueError, match="non-empty 'members'"):
            FleetSpec.from_dict({"name": "empty"})


class TestPresets:
    def test_presets_are_valid_and_heterogeneous(self):
        for name, spec in PRESETS.items():
            assert preset(name) == spec
            assert len(spec.members) >= 2
        demo3 = preset("demo3")
        assert {m.n_nodes for m in demo3.members} == {64, 144, 256}
        assert {m.fault_profile for m in demo3.members} == {
            "mild",
            "none",
            "pathological",
        }

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown fleet preset"):
            preset("demo99")
