"""The sp2-trace command-line interface, end to end on tiny campaigns."""

import json

import pytest

from repro.trace_cli import build_parser, main
from repro.tracing import read_jsonl, validate_chrome_trace

_RECORD = ["record", "--seed", "42", "--days", "1", "--nodes", "16", "--users", "6"]


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One tiny seeded recording shared by the command tests."""
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    rc = main(_RECORD + ["--out", str(path)])
    assert rc == 0
    return path


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_record_defaults(self):
        args = build_parser().parse_args(["record"])
        assert args.seed == 0 and args.days == 2 and args.nodes == 16

    def test_export_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["export", "t.jsonl", "--format", "xml", "--out", "o"]
            )


class TestRecord:
    def test_record_writes_spans(self, recorded, capsys):
        spans = read_jsonl(recorded)
        assert len(spans) > 0
        assert any(s.category == "pbs.job" for s in spans)
        assert any(s.category == "campaign" for s in spans)

    def test_record_is_deterministic(self, recorded, tmp_path):
        """The acceptance bar: same seed, byte-identical trace file."""
        again = tmp_path / "again.jsonl"
        assert main(_RECORD + ["--out", str(again)]) == 0
        assert again.read_bytes() == recorded.read_bytes()

    def test_record_can_emit_chrome_directly(self, tmp_path):
        out = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        rc = main(_RECORD + ["--out", str(out), "--chrome", str(chrome)])
        assert rc == 0
        assert validate_chrome_trace(json.loads(chrome.read_text())) == []


class TestExport:
    def test_chrome_export_is_valid(self, recorded, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        rc = main(["export", str(recorded), "--format", "chrome", "--out", str(out)])
        assert rc == 0
        obj = json.loads(out.read_text())
        assert validate_chrome_trace(obj) == []
        assert any(ev["ph"] == "X" for ev in obj["traceEvents"])

    def test_empty_trace_rejected(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(["export", str(empty), "--out", str(tmp_path / "o.json")])
        assert rc == 1


class TestAnalysis:
    def test_critical_path_prints_every_job(self, recorded, capsys):
        rc = main(["critical-path", str(recorded)])
        assert rc == 0
        out = capsys.readouterr().out
        jobs = [s for s in read_jsonl(recorded) if s.category == "pbs.job"]
        assert out.count("critical path:") == len(jobs)
        assert "machine-wide attribution" in out

    def test_critical_path_single_job_filter(self, recorded, capsys):
        jobs = [s for s in read_jsonl(recorded) if s.category == "pbs.job"]
        job_id = jobs[0].args["job_id"]
        rc = main(["critical-path", str(recorded), "--job", str(job_id)])
        assert rc == 0
        assert capsys.readouterr().out.count("critical path:") == 1

    def test_unknown_job_id_fails(self, recorded, capsys):
        assert main(["critical-path", str(recorded), "--job", "999999"]) == 2

    def test_summary_counts_spans(self, recorded, capsys):
        rc = main(["summary", str(recorded)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs traced" in out
        assert "by category:" in out


class TestExitCodes:
    def test_record_zero_spans_exits_1(self, tmp_path, capsys, monkeypatch):
        """A recording that captured nothing must not read as success."""
        import repro.trace_cli as trace_cli
        from repro.tracing.tracer import Tracer

        monkeypatch.setattr(trace_cli, "Tracer", lambda: Tracer(enabled=False))
        out = tmp_path / "trace.jsonl"
        rc = trace_cli.main(["record", "--days", "1", "--out", str(out)])
        assert rc == 1
        assert "zero spans" in capsys.readouterr().err
        assert not out.exists()
