"""Resilience contract, end to end.

Two properties hold simultaneously (ISSUE 4's acceptance bar):

* a faulted campaign is a pure function of ``(seed, profile, shard
  plan)`` — worker count never changes a byte of the merged output;
* a campaign interrupted by a crashed shard worker and then retried (or
  resumed from its checkpoints) merges to output byte-identical to an
  uninterrupted run.

The simulated crash is driven by the ``REPRO_CRASH_SHARD`` env hook —
the same knob the CI fault-smoke job uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.export import dataset_to_json
from repro.analysis.opsreport import campaign_ops_digest
from repro.core.study import StudyConfig
from repro.faults.profile import PROFILES
from repro.parallel import ShardExecutionError, run_parallel_study
from repro.parallel.worker import CRASH_ENV_VAR

CONFIG = StudyConfig(
    seed=3, n_days=4, n_nodes=16, n_users=6, fault_profile=PROFILES["pathological"]
)
SHARD_DAYS = 1  # 4 shards: enough to occupy every worker count under test


def assert_identical(a, b) -> None:
    """Byte-level equality of everything an operator can observe."""
    sa, sb = a.collector.samples, b.collector.samples
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert x.time == y.time
        assert x.node_ids == y.node_ids
        assert x.missing == y.missing
        assert np.array_equal(x.matrix, y.matrix)
    assert [r.job_id for r in a.accounting.records] == [
        r.job_id for r in b.accounting.records
    ]
    assert campaign_ops_digest(a) == campaign_ops_digest(b)
    assert dataset_to_json(a) == dataset_to_json(b)
    la, lb = a.faults, b.faults
    assert (la is None) == (lb is None)
    if la is not None:
        assert la.events == lb.events
        assert (la.jobs_killed, la.jobs_requeued, la.passes_dropped) == (
            lb.jobs_killed,
            lb.jobs_requeued,
            lb.passes_dropped,
        )


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted 1-worker run of the faulted shard plan."""
    return run_parallel_study(CONFIG, workers=1, shard_days=SHARD_DAYS)


class TestWorkerCountInvariance:
    def test_faults_actually_fired(self, reference):
        assert reference.faults is not None
        assert len(reference.faults.events) > 0

    @pytest.mark.parametrize("workers", [2, 4])
    def test_faulted_campaign_identical_across_worker_counts(self, reference, workers):
        parallel = run_parallel_study(CONFIG, workers=workers, shard_days=SHARD_DAYS)
        assert_identical(reference, parallel)


class TestCrashRecovery:
    def test_crashed_worker_is_retried_to_identical_output(
        self, reference, tmp_path, monkeypatch
    ):
        """One worker dies mid-campaign; the runner detects the broken
        pool, retries, and the merged output matches the uninterrupted
        run byte for byte."""
        monkeypatch.setenv(CRASH_ENV_VAR, "1")
        recovered = run_parallel_study(
            CONFIG,
            workers=2,
            shard_days=SHARD_DAYS,
            checkpoint_dir=str(tmp_path),
            backoff_seconds=0.0,
        )
        # The crash actually happened (the marker proves the death).
        assert (tmp_path / ".crashed-1").exists()
        assert_identical(reference, recovered)

    def test_kill_then_resume_is_byte_identical(self, reference, tmp_path, monkeypatch):
        """With retries disabled the campaign hard-fails; a --resume run
        picks up the surviving checkpoints and completes identically."""
        monkeypatch.setenv(CRASH_ENV_VAR, "1")
        with pytest.raises(ShardExecutionError) as err:
            run_parallel_study(
                CONFIG,
                workers=1,  # in-process: siblings complete, shard 1 dies
                shard_days=SHARD_DAYS,
                checkpoint_dir=str(tmp_path),
                max_attempts=1,
            )
        assert 1 in err.value.shard_indices
        # Shard 0 finished before the crash and left its checkpoint.
        assert (tmp_path / "shard-0000.pkl").exists()

        monkeypatch.delenv(CRASH_ENV_VAR)
        resumed = run_parallel_study(
            CONFIG,
            workers=1,
            shard_days=SHARD_DAYS,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert_identical(reference, resumed)

    def test_resume_ignores_stale_checkpoints(self, reference, tmp_path):
        """Checkpoints from a different campaign definition are
        recomputed, not trusted."""
        other = StudyConfig(
            seed=99, n_days=4, n_nodes=16, n_users=6, fault_profile=PROFILES["mild"]
        )
        run_parallel_study(other, workers=1, shard_days=SHARD_DAYS, checkpoint_dir=str(tmp_path))
        resumed = run_parallel_study(
            CONFIG,
            workers=1,
            shard_days=SHARD_DAYS,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert_identical(reference, resumed)
