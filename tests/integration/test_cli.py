"""The sp2-study command-line interface."""


from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.days == 30 and args.nodes == 144 and args.seed == 0

    def test_flags(self):
        args = build_parser().parse_args(
            ["--days", "5", "--seed", "3", "--tables", "--figures"]
        )
        assert args.days == 5 and args.seed == 3
        assert args.tables and args.figures


class TestMain:
    def test_small_run_prints_headlines(self, capsys):
        rc = main(["--days", "2", "--nodes", "16", "--users", "4", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Paper vs measured" in out
        assert "average daily system performance" in out

    def test_tables_flag_degrades_gracefully(self, capsys):
        """A 2-day toy campaign has no >2 Gflops days on 16 nodes; the
        CLI must say so rather than crash."""
        rc = main(["--days", "2", "--nodes", "16", "--users", "4", "--tables"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_csv_dump(self, tmp_path, capsys):
        rc = main(
            ["--days", "2", "--nodes", "16", "--users", "4", "--csv-dir", str(tmp_path)]
        )
        assert rc == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == [f"figure{i}.csv" for i in range(1, 6)]
        text = (tmp_path / "figure1.csv").read_text()
        assert text.splitlines()[0].startswith("daily_gflops")


class TestJsonExport:
    def test_json_summary_written(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        rc = main(
            ["--days", "2", "--nodes", "16", "--users", "4", "--json", str(out)]
        )
        assert rc == 0
        import json

        data = json.loads(out.read_text())
        assert data["config"]["n_nodes"] == 16
        assert "headlines" in data

    def test_json_includes_telemetry_alert_counts(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        rc = main(
            ["--days", "2", "--nodes", "16", "--users", "4", "--json", str(out)]
        )
        assert rc == 0
        import json

        tele = json.loads(out.read_text())["telemetry"]
        assert tele is not None
        assert tele["samples_seen"] == 2 * 96 + 1
        for key in ("alerts_total", "alerts_by_rule", "alerts_suppressed"):
            assert key in tele


class TestEmptyCampaignExit:
    def test_zero_finished_jobs_exits_nonzero(self, capsys, monkeypatch):
        """A silently-empty campaign must not look like a success."""
        import dataclasses

        import repro.cli
        from repro.pbs.accounting import AccountingLog

        real = repro.cli.run_study

        def empty_run(*args, **kwargs):
            dataset = real(*args, **kwargs)
            return dataclasses.replace(dataset, accounting=AccountingLog())

        monkeypatch.setattr(repro.cli, "run_study", empty_run)
        rc = main(["--days", "2", "--nodes", "16", "--users", "4"])
        assert rc == 1
        assert "zero jobs" in capsys.readouterr().err
