"""The sp2-ops live-operations CLI."""

import pytest

from repro.ops_cli import build_parser, main

SMALL = ["--days", "2", "--nodes", "32", "--users", "8", "--seed", "5"]


class TestParser:
    def test_subcommands_registered(self):
        p = build_parser()
        for argv in (
            ["alerts"],
            ["tail", "--limit", "5"],
            ["query", "--metric", "gflops.system"],
            ["jobs", "--top", "3"],
        ):
            args = p.parse_args(argv + SMALL)
            assert args.days == 2 and args.seed == 5

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAlerts:
    def test_alerts_run(self, capsys):
        rc = main(["alerts"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        assert "intervals watched" in out

    def test_acceptance_invocation_detects_paging(self, capsys):
        """The CI smoke invocation: a 3-day seed-1 campaign includes a
        high-paging day and the online rule must catch it."""
        rc = main(["alerts", "--days", "3", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "paging" in out
        assert "likely paging" in out

    def test_rule_filter(self, capsys):
        rc = main(["alerts", "--rule", "paging"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if line.startswith("d") and "paging" not in line:
                pytest.fail(f"non-paging alert leaked through filter: {line}")

    def test_fault_rule_filter_on_faulted_campaign(self, capsys):
        rc = main(["alerts", "--rule", "fault", "--fault-profile", "pathological"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        shown = [line for line in out.splitlines() if line.startswith("d")]
        assert shown, "pathological profile fired no fault alerts"
        assert all("fault" in line for line in shown)

    def test_zero_sample_campaign_exits_nonzero(self, capsys):
        """A campaign that measured nothing must not read as healthy."""
        from repro.core.study import StudyConfig, StudyDataset
        from repro.hpm.collector import SampleSeries
        from repro.ops_cli import cmd_alerts
        from repro.pbs.accounting import AccountingLog

        empty = StudyDataset(
            config=StudyConfig(n_days=1, n_nodes=16, n_users=4),
            trace=None,
            collector=SampleSeries(),
            accounting=AccountingLog(),
        )
        args = build_parser().parse_args(["alerts"] + SMALL)
        rc = cmd_alerts(empty, args)
        assert rc == 1
        assert "zero collector samples" in capsys.readouterr().err


class TestTail:
    def test_tail_renders_feed(self, capsys):
        rc = main(["tail", "--limit", "10"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        assert "GFLOPS" in out and "SYS/USR" in out
        assert "10 of" in out

    def test_tail_all_intervals(self, capsys):
        rc = main(["tail", "--limit", "0"] + SMALL)
        assert rc == 0
        # 2 days of 15-minute samples = 192 intervals.
        assert "192 of 192 intervals" in capsys.readouterr().out


class TestQuery:
    def test_query_known_metric(self, capsys):
        rc = main(["query", "--metric", "tlb.miss_rate"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        assert "quantiles" in out and "ewma" in out

    def test_query_with_window_and_plot(self, capsys):
        rc = main(
            ["query", "--metric", "gflops.system", "--day-from", "0", "--day-to", "0", "--plot"]
            + SMALL
        )
        assert rc == 0
        out = capsys.readouterr().out
        # One day of 15-minute intervals, minus the boundary interval
        # ending exactly at midnight (half-open window).
        assert "95 in window" in out

    def test_query_unknown_metric_fails(self, capsys):
        rc = main(["query", "--metric", "bogus"] + SMALL)
        assert rc == 2
        assert "unknown metric" in capsys.readouterr().err


class TestJobs:
    def test_jobs_table(self, capsys):
        rc = main(["jobs", "--top", "5"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        assert "MFLOPS" in out
        assert "finished jobs shown" in out

    def test_jobs_user_filter(self, capsys):
        rc = main(["jobs", "--user", "1", "--top", "0"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            cols = line.split()
            if cols and cols[0].isdigit():
                assert cols[2] == "1"


class TestReport:
    def test_report_renders_performance_page(self, capsys):
        rc = main(["report", "--job", "1", "--trace"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        assert "job 1 performance report" in out
        assert "throughput :" in out
        assert "critical   :" in out  # --trace gives real attribution

    def test_report_untraced_notes_missing_attribution(self, capsys):
        rc = main(["report", "--job", "1"] + SMALL)
        assert rc == 0
        assert "untraced campaign" in capsys.readouterr().out

    def test_report_unknown_job_is_usage_error(self, capsys):
        rc = main(["report", "--job", "999"] + SMALL)
        assert rc == 2
        err = capsys.readouterr().err
        assert "no finished job 999" in err
        assert "finished job ids" in err  # the hint names the valid range

    def test_report_trace_conflicts_with_workers(self, capsys):
        rc = main(["report", "--job", "1", "--trace", "--workers", "2"] + SMALL)
        assert rc == 2
        assert "--trace" in capsys.readouterr().err


class TestServeAndAsk:
    """One live service round trip through the real CLI entry points."""

    @pytest.fixture()
    def service(self, tmp_path):
        import threading

        port_file = tmp_path / "port"
        rc_box = {}

        def run_service():
            rc_box["rc"] = main(
                ["serve", "--name", "camp", "--port-file", str(port_file)] + SMALL
            )

        thread = threading.Thread(target=run_service, daemon=True)
        thread.start()
        deadline = 30.0
        import time

        start = time.monotonic()
        while not port_file.exists():
            if time.monotonic() - start > deadline:
                pytest.fail("service never wrote its port file")
            time.sleep(0.05)
        # The port file appears at bind time, before the campaign has
        # finished ingesting; wait until it reads as complete so the
        # test body sees the full job table.
        import asyncio

        from repro.ops import OpsClient

        async def wait_resident():
            port = int(port_file.read_text().strip())
            while time.monotonic() - start < deadline:
                async with await OpsClient.connect("127.0.0.1", port) as client:
                    cat = await client.request("catalog")
                entries = cat["campaigns"]
                if entries and entries[0]["status"] == "complete":
                    return
                await asyncio.sleep(0.05)
            pytest.fail("campaign never completed ingest")

        asyncio.run(wait_resident())
        yield port_file
        # Always stop the service, even if the test body failed.
        main(["ask", "shutdown", "--port-file", str(port_file)])
        thread.join(timeout=10.0)
        assert rc_box.get("rc") == 0  # clean shutdown path

    def test_ask_round_trips(self, service, capsys):
        import json

        port = ["--port-file", str(service)]
        assert main(["ask", "ping"] + port) == 0
        ping = json.loads(capsys.readouterr().out)
        assert ping["campaigns"] == 1

        assert main(["ask", "query", "--campaign", "camp", "--metric",
                     "gflops.system"] + port) == 0
        query = json.loads(capsys.readouterr().out)
        assert query["count"] > 0 and query["dropped"] == 0

        assert main(["ask", "report", "--campaign", "camp", "--job", "1"] + port) == 0
        assert "job 1 performance report" in capsys.readouterr().out

    def test_ask_protocol_errors_map_to_exit_codes(self, service, capsys):
        port = ["--port-file", str(service)]
        # Usage errors (the request was wrong) exit 2.
        assert main(["ask", "query", "--campaign", "ghost", "--metric",
                     "gflops.system"] + port) == 2
        assert "unknown-campaign" in capsys.readouterr().err
        # Operational errors (nothing listening) exit 1.
        assert main(["ask", "ping", "--port", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_ask_without_port_is_usage_error(self, capsys):
        rc = main(["ask", "ping"])
        assert rc == 2
        assert "--port" in capsys.readouterr().err
