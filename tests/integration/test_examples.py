"""Smoke tests: the fast example scripts must run end to end.

The campaign-scale examples (quickstart, batch_job_study, ...) are
exercised through the same APIs by the analysis tests; here we execute
the quick scripts as real subprocesses so a packaging or import
regression in ``examples/`` cannot ship silently.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_SCRIPTS = [
    "single_kernel_hpm.py",
    "counter_selection.py",
    "cache_exploration.py",
    "npb_suite.py",
    "ops_service.py",
]


@pytest.mark.parametrize("script", FAST_SCRIPTS)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    """Every example referenced by the README exists."""
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in EXAMPLES.glob("*.py"):
        assert script.name in readme, f"{script.name} missing from README"


def test_single_kernel_output_mentions_anchors():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "single_kernel_hpm.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "matmul" in proc.stdout
    assert "Broken divide counter" in proc.stdout
