"""Campaign-level backend equivalence: the seed × backend × worker matrix.

The accrual backend (``scalar`` vs. the vectorized stores) is an
implementation choice, never an experiment parameter: for any seed and
any shard plan, every backend must produce byte-identical ``--json``
output at every worker count.  This is the system-level counterpart of
the per-node property tests in ``tests/power2/test_batch_equivalence.py``.

Serial and sharded campaigns are *different experiments* (the shard plan
changes the trace realization the way a different seed would), so each
is compared within its own plan group.
"""

from __future__ import annotations

import pytest

from repro.analysis.export import dataset_to_json
from repro.core.study import StudyConfig, run_study
from repro.faults.profile import PROFILES
from repro.parallel import run_parallel_study

SEEDS = [0, 1, 2, 3, 4]
SMALL = dict(n_days=2, n_nodes=16, n_users=6)


def _serial_json(seed: int, backend: str) -> str:
    ds = run_study(seed, accrual_backend=backend, **SMALL)
    return dataset_to_json(ds)


def _sharded_json(seed: int, backend: str, workers: int) -> str:
    cfg = StudyConfig(seed=seed, accrual_backend=backend, **SMALL)
    ds = run_parallel_study(cfg, workers=workers, shard_days=1)
    return dataset_to_json(ds)


class TestSerialMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_scalar_and_vectorized_serial_runs_identical(self, seed):
        assert _serial_json(seed, "scalar") == _serial_json(seed, "vectorized")

    def test_python_fallback_matches_numpy(self):
        assert _serial_json(0, "python") == _serial_json(0, "numpy")


class TestShardedMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_backend_and_worker_count_invariant(self, seed):
        """{scalar, vectorized} × {1, 4 workers}: one byte pattern."""
        reference = _sharded_json(seed, "scalar", workers=1)
        assert _sharded_json(seed, "vectorized", workers=1) == reference
        assert _sharded_json(seed, "scalar", workers=4) == reference
        assert _sharded_json(seed, "vectorized", workers=4) == reference


class TestFaultedCampaigns:
    def test_backends_identical_under_fault_injection(self):
        """Crash/repair schedules (counter freezes, unreachable nodes,
        requeues) accrue identically on every backend."""
        jsons = []
        for backend in ("scalar", "vectorized", "python"):
            ds = run_study(
                7,
                accrual_backend=backend,
                fault_profile=PROFILES["pathological"],
                **SMALL,
            )
            assert ds.faults is not None and len(ds.faults.events) > 0
            jsons.append(dataset_to_json(ds))
        assert jsons[0] == jsons[1] == jsons[2]


class TestCliSurface:
    def test_flag_threads_through_to_identical_json(self, tmp_path, capsys):
        from repro.cli import main

        outputs = []
        for backend in ("scalar", "vectorized"):
            out = tmp_path / f"{backend}.json"
            rc = main(
                [
                    "--days", "2", "--nodes", "16", "--users", "4", "--seed", "5",
                    "--accrual-backend", backend, "--json", str(out),
                ]
            )
            assert rc == 0
            outputs.append(out.read_text())
        assert outputs[0] == outputs[1]

    def test_unknown_backend_rejected(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--accrual-backend", "fortran"])
