"""End-to-end streaming detection: the §6 pathology caught online.

The acceptance bar for the telemetry subsystem: a seeded 30-day campaign
must raise paging alerts on its high-paging days while a clean
configuration (memory large enough that no job oversubscribes) raises
none, and the alert set must be reproducible run-to-run for one seed.
"""

import dataclasses

from repro.analysis.opsreport import campaign_ops_digest, day_ops, render_day_report
from repro.core.study import StudyConfig, WorkloadStudy, run_study
from repro.power2.config import POWER2_590
from repro.workload.traces import SECONDS_PER_DAY


class TestPagingDetection:
    def test_month_campaign_raises_paging_alerts(self, month_dataset):
        t = month_dataset.telemetry
        paging = t.engine.alerts_for("paging")
        assert paging, "a month of NAS load must show the §6 pathology online"
        assert all(a.severity == "critical" for a in paging)

    def test_paging_alerts_land_on_high_paging_days(self, month_dataset):
        """Every alert day must actually show the signature in the batch
        series — the online rule may not invent pathology."""
        daily = month_dataset.daily_rates()
        for alert in month_dataset.telemetry.engine.alerts_for("paging"):
            day = int(alert.time // SECONDS_PER_DAY)
            # Day boundary samples belong to the preceding day's last interval.
            candidates = {min(day, len(daily) - 1), max(day - 1, 0)}
            assert any(daily[d].system_user_fxu_ratio > 0.05 for d in candidates)

    def test_clean_configuration_raises_no_paging_alerts(self):
        """64× node memory: no job oversubscribes, so the paging rule
        must stay silent for the whole campaign."""
        big = dataclasses.replace(
            POWER2_590, memory_bytes=POWER2_590.memory_bytes * 64
        )
        cfg = StudyConfig(
            seed=1, n_days=10, n_nodes=64, n_users=20, machine_config=big
        )
        dataset = WorkloadStudy(cfg).run()
        assert dataset.telemetry.engine.alerts_for("paging") == []


class TestDeterminism:
    def test_same_seed_same_alerts(self):
        a = run_study(seed=3, n_days=8, n_nodes=64, n_users=20)
        b = run_study(seed=3, n_days=8, n_nodes=64, n_users=20)
        assert a.telemetry.engine.alerts == b.telemetry.engine.alerts
        assert a.telemetry.summary() == b.telemetry.summary()


class TestOpsReportMigration:
    def test_reports_byte_identical_with_and_without_telemetry(self, month_dataset):
        """The telemetry-rollup path and the legacy accounting scan must
        render byte-identical daily reports."""
        legacy = dataclasses.replace(month_dataset, telemetry=None)
        for day in range(month_dataset.config.n_days):
            assert render_day_report(day_ops(month_dataset, day)) == render_day_report(
                day_ops(legacy, day)
            )
        assert campaign_ops_digest(month_dataset) == campaign_ops_digest(legacy)


class TestNodeGapAlerts:
    def test_outage_emits_gap_and_recovery(self):
        cfg = StudyConfig(seed=13, n_days=3, n_nodes=16, n_users=8)
        study = WorkloadStudy(cfg)
        victim = study.daemons[2]

        study.sim.schedule_at(1.0 * 86400, lambda sim: victim.mark_down(), name="kill")
        study.sim.schedule_at(2.0 * 86400, lambda sim: victim.mark_up(), name="revive")
        dataset = study.run()

        gaps = dataset.telemetry.engine.alerts_for("node-gap")
        keys = [a.key for a in gaps]
        assert f"node-{victim.node_id}" in keys
        assert f"node-{victim.node_id}-up" in keys
        down = next(a for a in gaps if a.key == f"node-{victim.node_id}")
        up = next(a for a in gaps if a.key == f"node-{victim.node_id}-up")
        assert down.time < up.time

    def test_bus_publishes_node_transitions(self):
        from repro.telemetry.bus import TOPIC_NODE_DOWN, TOPIC_NODE_UP

        cfg = StudyConfig(seed=13, n_days=2, n_nodes=16, n_users=8)
        study = WorkloadStudy(cfg)
        downs: list = []
        ups: list = []
        study.bus.subscribe(TOPIC_NODE_DOWN, downs.append)
        study.bus.subscribe(TOPIC_NODE_UP, ups.append)
        victim = study.daemons[0]
        study.sim.schedule_at(0.5 * 86400, lambda sim: victim.mark_down(), name="kill")
        study.sim.schedule_at(1.0 * 86400, lambda sim: victim.mark_up(), name="revive")
        study.run()
        assert len(downs) == 1 and downs[0].node_id == victim.node_id
        assert len(ups) == 1 and ups[0].up
