"""Failure injection: node daemons dying and recovering mid-campaign.

§3's collector samples "all the SP2 nodes which are available" — the
real scripts lived with nodes going away.  These tests kill daemons
mid-campaign and check the pipeline degrades the way the real one did:
samples record the missing nodes, interval sums skip them, and analysis
still produces consistent artefacts.
"""

import numpy as np

from repro.core.study import StudyConfig, WorkloadStudy
from repro.workload.traces import generate_trace


def run_with_outage(kill_fraction: float = 0.25, *, recover: bool = True):
    """A 4-day campaign where some daemons die on day 2 (and optionally
    come back on day 3)."""
    cfg = StudyConfig(seed=13, n_days=4, n_nodes=32, n_users=8)
    study = WorkloadStudy(cfg)
    victims = study.daemons[: int(kill_fraction * cfg.n_nodes)]

    def kill(sim):
        for d in victims:
            d.mark_down()

    def revive(sim):
        for d in victims:
            d.mark_up()

    study.sim.schedule_at(1.0 * 86400, kill, name="outage")
    if recover:
        study.sim.schedule_at(2.0 * 86400, revive, name="recovery")
    trace = generate_trace(cfg.seed, n_days=cfg.n_days, n_nodes=cfg.n_nodes, n_users=cfg.n_users)
    return study.run(trace), [d.node_id for d in victims]


class TestOutage:
    def test_samples_record_missing_nodes(self):
        dataset, victims = run_with_outage()
        downs = [s for s in dataset.collector.samples if s.missing]
        assert downs, "outage never visible in samples"
        assert set(downs[0].missing) == set(victims)

    def test_intervals_skip_missing_nodes(self):
        dataset, victims = run_with_outage()
        n_nodes = dataset.config.n_nodes
        counts = {iv.n_nodes for iv in dataset.collector.intervals()}
        assert n_nodes in counts  # healthy intervals
        assert (n_nodes - len(victims)) in counts  # outage intervals

    def test_recovery_restores_full_coverage(self):
        dataset, _ = run_with_outage(recover=True)
        last = dataset.collector.samples[-1]
        assert last.missing == ()

    def test_permanent_outage_persists(self):
        dataset, victims = run_with_outage(recover=False)
        last = dataset.collector.samples[-1]
        assert set(last.missing) == set(victims)

    def test_analysis_survives_outage(self):
        dataset, _ = run_with_outage()
        daily = dataset.daily_gflops()
        assert len(daily) == dataset.config.n_days
        assert np.isfinite(daily).all()
        assert daily.min() >= 0.0

    def test_counters_still_monotonic_across_recovery(self):
        """A node returning after an outage must not produce negative
        deltas (its software counters kept accumulating)."""
        dataset, _ = run_with_outage(recover=True)
        for iv in dataset.collector.intervals():
            assert all(v >= 0 for v in iv.totals.values())

    def test_jobs_unaffected_by_monitoring_outage(self):
        """RS2HPM is observational: daemons dying must not perturb PBS."""
        healthy, _ = run_with_outage(kill_fraction=0.0)
        degraded, _ = run_with_outage(kill_fraction=0.25)
        assert len(healthy.accounting) == len(degraded.accounting)
        h = [r.job_id for r in healthy.accounting.records]
        d = [r.job_id for r in degraded.accounting.records]
        assert h == d
