"""Fleet federation end-to-end: determinism contracts and the CLI.

The two contracts ISSUE-level tests pin:

* a **single-member fleet** is byte-identical to the single-machine
  study at the same seed — serially (vs :class:`WorkloadStudy`) and
  through the sharded runner (vs :func:`run_parallel_study`), with and
  without fault injection;
* fleet output is **invariant to the worker count** (like the shard
  runner) and to **member ordering** (member results are keyed by
  name-seeded RNG streams, not position).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.export import dataset_to_json
from repro.core.study import StudyConfig, WorkloadStudy
from repro.faults.profile import FaultProfile
from repro.fleet import (
    FleetSpec,
    MemberSpec,
    fleet_summary,
    render_fleet_report,
    run_fleet,
)
from repro.fleet_cli import main

SOLO = dict(seed=3, n_days=4, n_users=20)


def _assert_same_dataset(a, b) -> None:
    sa, sb = a.collector.samples, b.collector.samples
    assert len(sa) == len(sb)
    for x, y in zip(sa, sb):
        assert x.time == y.time
        assert np.array_equal(x.matrix, y.matrix)
    assert dataset_to_json(a) == dataset_to_json(b)


class TestSingleMemberByteIdentity:
    def test_serial_fleet_equals_single_machine_study(self):
        spec = FleetSpec(members=(MemberSpec(name="solo", n_nodes=64),), **SOLO)
        fleet_ds = run_fleet(spec).member("solo")
        study_ds = WorkloadStudy(StudyConfig(n_nodes=64, **SOLO)).run()
        _assert_same_dataset(fleet_ds, study_ds)

    def test_serial_fleet_equals_study_under_faults(self):
        """A one-member fleet keeps the campaign-root fault tree, so even
        fault schedules match the single-machine path exactly."""
        spec = FleetSpec(
            members=(MemberSpec(name="solo", n_nodes=64, fault_profile="mild"),),
            **SOLO,
        )
        fleet_ds = run_fleet(spec).member("solo")
        study_ds = WorkloadStudy(
            StudyConfig(n_nodes=64, fault_profile=FaultProfile.named("mild"), **SOLO)
        ).run()
        assert fleet_ds.faults is not None and len(fleet_ds.faults.events) > 0
        _assert_same_dataset(fleet_ds, study_ds)

    def test_sharded_fleet_equals_parallel_study(self):
        """Routing a single-member fleet through the shard runner equals
        running the member's config through it directly: the injected
        routed trace is the trace the runner would generate."""
        from repro.parallel.runner import run_parallel_study

        spec = FleetSpec(members=(MemberSpec(name="solo", n_nodes=64),), **SOLO)
        fleet_ds = run_fleet(spec, workers=1, shard_days=4).member("solo")
        study_ds = run_parallel_study(
            StudyConfig(n_nodes=64, **SOLO), workers=1, shard_days=4
        )
        _assert_same_dataset(fleet_ds, study_ds)


@pytest.fixture(scope="module")
def duo_spec():
    return FleetSpec(
        members=(
            MemberSpec(name="a", n_nodes=32),
            MemberSpec(name="b", n_nodes=64, fault_profile="mild"),
        ),
        seed=5,
        n_days=4,
        n_users=16,
    )


class TestFleetInvariance:
    def test_worker_count_never_changes_output(self, duo_spec):
        f1 = run_fleet(duo_spec, workers=1, shard_days=2)
        f3 = run_fleet(duo_spec, workers=3, shard_days=2)
        assert json.dumps(fleet_summary(f1), sort_keys=True) == json.dumps(
            fleet_summary(f3), sort_keys=True
        )
        for name in ("a", "b"):
            _assert_same_dataset(f1.member(name), f3.member(name))

    def test_member_order_never_changes_member_results(self, duo_spec):
        """Fault schedules are keyed by member *name*, traces by the
        shared fleet stream — reversing the member tuple must reproduce
        each member's dataset exactly."""
        reversed_spec = FleetSpec(
            members=tuple(reversed(duo_spec.members)),
            seed=duo_spec.seed,
            n_days=duo_spec.n_days,
            n_users=duo_spec.n_users,
        )
        fwd = run_fleet(duo_spec)
        rev = run_fleet(reversed_spec)
        for name in ("a", "b"):
            _assert_same_dataset(fwd.member(name), rev.member(name))


class TestHeterogeneousFleet:
    def test_three_center_fleet_end_to_end(self):
        """The acceptance-criteria shape: 64/144/256 nodes, mixed switch
        and fault configs, run end to end with comparison tables out."""
        spec = FleetSpec(
            name="accept",
            members=(
                MemberSpec(
                    name="lewis",
                    n_nodes=64,
                    memory_mb=64,
                    switch_latency_us=90.0,
                    switch_bandwidth_mb_s=17.0,
                    fault_profile="mild",
                ),
                MemberSpec(name="ames", n_nodes=144),
                MemberSpec(
                    name="langley",
                    n_nodes=256,
                    memory_mb=256,
                    switch_latency_us=30.0,
                    fault_profile="pathological",
                ),
            ),
            seed=1,
            n_days=3,
            n_users=30,
        )
        fleet = run_fleet(spec)
        summary = fleet_summary(fleet)["fleet"]
        assert summary["total_nodes"] == 464
        assert summary["n_members"] == 3
        assert summary["total_jobs_accounted"] == sum(
            m["jobs_accounted"] for m in summary["members"]
        )
        by_name = {m["name"]: m for m in summary["members"]}
        # Faulted centers carry fault forensics; healthy ones don't.
        assert "faults" in by_name["lewis"] and "faults" in by_name["langley"]
        assert "faults" not in by_name["ames"]
        report = render_fleet_report({"fleet": summary})
        for fragment in (
            "lewis",
            "ames",
            "langley",
            "Fleet utilization by center",
            "Job-size distribution",
            "Application mix",
        ):
            assert fragment in report

    def test_small_member_memory_pressure_shows_up(self):
        """Heterogeneity must be physical, not cosmetic: starving a
        center of memory (32 MB vs the reference 128 MB) must depress
        its delivered per-node performance at equal node count."""
        def member(name, **overrides):
            return MemberSpec(name=name, n_nodes=32, **overrides)

        spec = FleetSpec(
            members=(member("starved", memory_mb=32), member("roomy")),
            seed=2,
            n_days=4,
            n_users=16,
            routing="round-robin",
        )
        fleet = run_fleet(spec)
        by_name = {m["name"]: m for m in fleet_summary(fleet)["fleet"]["members"]}
        assert (
            by_name["starved"]["time_weighted_mflops_per_node"]
            < by_name["roomy"]["time_weighted_mflops_per_node"]
        )


class TestFleetCli:
    def test_run_report_compare_round_trip(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        base = ["run", "--preset", "demo2", "--days", "2", "--users", "8"]
        assert main([*base, "--out", str(out_a)]) == 0
        assert main([*base, "--seed", "9", "--out", str(out_b)]) == 0
        capsys.readouterr()

        assert main(["report", str(out_a)]) == 0
        report = capsys.readouterr().out
        assert "Fleet utilization by center" in report
        assert "west" in report and "east" in report

        assert main(["compare", str(out_a), str(out_b)]) == 0
        cmp_out = capsys.readouterr().out
        assert "Fleet comparison" in cmp_out and "Delta %" in cmp_out

    def test_run_json_block_matches_saved_document(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        rc = main(
            [
                "run",
                "--preset",
                "demo2",
                "--days",
                "2",
                "--users",
                "8",
                "--json",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(out.read_text())
        assert printed == saved
        assert printed["spec"]["members"][0]["name"] == "west"
        assert printed["fleet"]["routing"] == "home-center"

    def test_custom_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec = FleetSpec(
            members=(MemberSpec(name="tiny", n_nodes=16),),
            name="custom",
            n_days=2,
            n_users=6,
        )
        spec_file.write_text(json.dumps(spec.to_dict()))
        assert main(["run", "--spec", str(spec_file)]) == 0
        assert "custom" in capsys.readouterr().out

    def test_invalid_spec_file_fails_cleanly(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps({"members": [], "name": "bad"}))
        assert main(["run", "--spec", str(spec_file)]) == 2
        assert "non-empty 'members'" in capsys.readouterr().err

    def test_report_rejects_non_fleet_json(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"hello": 1}))
        assert main(["report", str(other)]) == 2
        assert "no 'fleet' block" in capsys.readouterr().err


class TestRunExitCodes:
    def test_zero_job_fleet_exits_1(self, capsys, monkeypatch):
        """A fleet where no member finished a job must not read as success."""
        import repro.fleet_cli as fleet_cli

        real_run = fleet_cli.run_fleet

        def hollow(spec, **kwargs):
            fleet = real_run(spec, **kwargs)
            for member in fleet.members:
                member.dataset.accounting.records.clear()
            return fleet

        monkeypatch.setattr(fleet_cli, "run_fleet", hollow)
        rc = fleet_cli.main(["run", "--preset", "demo2", "--days", "1"])
        assert rc == 1
        assert "zero jobs" in capsys.readouterr().err
