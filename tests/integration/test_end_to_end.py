"""End-to-end integration: campaign → analysis → paper shapes."""

import numpy as np
import pytest

from repro.analysis.figures import figure1, figure2, figure3, figure4, figure5
from repro.analysis.report import headline_report
from repro.analysis.tables import table2, table3, table4
from repro.hpm.jobreport import parse_job_report, render_job_report


class TestFullPipeline:
    def test_all_artifacts_generate(self, month_dataset):
        """Every table and figure builds from one campaign."""
        for gen in (table2, table3, table4):
            assert gen(month_dataset).render()
        for gen in (figure1, figure2, figure3, figure4, figure5):
            fig = gen(month_dataset)
            assert fig.render()
            assert fig.csv()

    def test_job_reports_roundtrip_from_campaign(self, month_dataset):
        recs = month_dataset.accounting.filtered()[:10]
        for rec in recs:
            parsed = parse_job_report(render_job_report(rec))
            assert parsed.total_mflops == pytest.approx(rec.total_mflops)

    def test_paging_cliff_shows_in_batch_data(self, month_dataset):
        """§6: >64-node jobs collapse; their records show the system-mode
        signature."""
        recs = month_dataset.accounting.filtered()
        wide_paging = [
            r for r in recs if r.nodes_requested > 64 and r.app_name == "wide_paging"
        ]
        if not wide_paging:
            pytest.skip("no wide paging jobs completed this month")
        rates = np.array([r.mflops_per_node for r in wide_paging])
        ratios = np.array([r.system_user_fxu_ratio for r in wide_paging])
        narrow = [r.mflops_per_node for r in recs if r.nodes_requested <= 64]
        # The population collapses relative to the narrow jobs, and the
        # majority shows the system-mode signature.
        assert rates.mean() < 0.5 * np.mean(narrow)
        assert (ratios > 0.5).mean() >= 0.5
        assert ratios.max() > 1.0

    def test_sampler_and_epilogue_agree_on_flops(self, month_dataset):
        """Two independent measurement paths (15-min samples vs job
        prologue/epilogue) must agree on the campaign's total flops to
        within the still-running-jobs slack."""
        ivs = month_dataset.collector.intervals()

        def flops(d):
            return (
                d.get("user.fpu0_fp_add", 0)
                + d.get("user.fpu1_fp_add", 0)
                + d.get("user.fpu0_fp_mul", 0)
                + d.get("user.fpu1_fp_mul", 0)
                + 2 * d.get("user.fpu0_fp_muladd", 0)
                + 2 * d.get("user.fpu1_fp_muladd", 0)
            )

        sampled = sum(flops(iv.totals) for iv in ivs)
        from repro.pbs.job import JobRecord

        accounted = sum(
            JobRecord.flops_from_deltas(r.summed_deltas())
            for r in month_dataset.accounting.records
        )
        assert accounted <= sampled * 1.001
        assert accounted >= 0.75 * sampled

    def test_headline_report_complete(self, month_dataset):
        report = headline_report(month_dataset)
        assert len(report) >= 14


class TestCrossChecks:
    def test_fig2_totals_match_accounting(self, month_dataset):
        fig = figure2(month_dataset)
        total_from_fig = fig.series["y"].sum()
        total_from_log = sum(
            r.walltime_seconds for r in month_dataset.accounting.filtered()
        )
        assert total_from_fig == pytest.approx(total_from_log)

    def test_fig4_is_16_node_subset_of_fig3(self, month_dataset):
        f3 = figure3(month_dataset)
        f4 = figure4(month_dataset)
        n16 = (f3.series["x"] == 16).sum()
        assert len(f4.series["job_mflops"]) == n16

    def test_fig1_mean_matches_headline(self, month_dataset):
        fig = figure1(month_dataset)
        headline = next(
            h
            for h in headline_report(month_dataset)
            if h.claim == "average daily system performance"
        )
        assert fig.series["daily_gflops"].mean() == pytest.approx(
            headline.measured_value
        )

    def test_fig5_days_match_campaign_length(self, month_dataset):
        fig = figure5(month_dataset)
        assert len(fig.series["x"]) == month_dataset.config.n_days
