"""The repo-wide 0/1/2 exit-code contract (CONTRIBUTING.md), enforced
uniformly across every sp2-* entry point."""

from __future__ import annotations

import pytest

import repro.cli
import repro.fleet_cli
import repro.ops_cli
import repro.sweep_cli
import repro.trace_cli

#: Every installed console entry point (pyproject [project.scripts]).
ENTRY_POINTS = [
    pytest.param(repro.cli.main, id="sp2-study"),
    pytest.param(repro.ops_cli.main, id="sp2-ops"),
    pytest.param(repro.trace_cli.main, id="sp2-trace"),
    pytest.param(repro.fleet_cli.main, id="sp2-fleet"),
    pytest.param(repro.sweep_cli.main, id="sp2-sweep"),
]


@pytest.mark.parametrize("main", ENTRY_POINTS)
def test_unknown_flag_is_usage_error(main, capsys):
    with pytest.raises(SystemExit) as e:
        main(["--no-such-flag"])
    assert e.value.code == 2


@pytest.mark.parametrize("main", ENTRY_POINTS)
def test_help_exits_zero(main, capsys):
    with pytest.raises(SystemExit) as e:
        main(["--help"])
    assert e.value.code == 0


class TestOperationalFailures:
    """Exit 1: the command ran but measured nothing."""

    def test_sweep_zero_cell_plan(self, tmp_path, capsys):
        spec = tmp_path / "s.yaml"
        spec.write_text("name: s\naxes:\n  tlb_entries: [256, 512]\n")
        rc = repro.sweep_cli.main(
            [
                "plan", "--spec", str(spec),
                "--only", "tlb_entries=256", "--only", "tlb_entries=512",
            ]
        )
        assert rc == 1

    def test_sweep_zero_job_cell(self, tmp_path, capsys):
        spec = tmp_path / "s.yaml"
        spec.write_text(
            "name: s\nbase:\n  n_days: 1\n  n_nodes: 8\n  n_users: 2\n"
            "  demand_mean: 0.001\n  seed: 8\n"
        )
        assert repro.sweep_cli.main(["run", "--spec", str(spec)]) == 1


class TestUsageErrors:
    """Exit 2: the request itself was wrong."""

    def test_study_resume_without_checkpoint_dir(self, capsys):
        assert repro.cli.main(["--resume"]) == 2

    def test_sweep_bad_spec(self, tmp_path, capsys):
        spec = tmp_path / "s.yaml"
        spec.write_text("name: s\naxes:\n  bogus: [1]\n")
        assert repro.sweep_cli.main(["plan", "--spec", str(spec)]) == 2
