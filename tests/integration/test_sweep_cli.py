"""The sp2-sweep command-line interface, driven in-process."""

from __future__ import annotations

import json

import pytest

from repro.sweep_cli import main

TINY_SPEC = """\
# two-cell toy sweep
name: toy
base:
  n_days: 1
  n_nodes: 8
  n_users: 4
  seed: 3
axes:
  tlb_entries: [256, 512]
"""


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "toy.yaml"
    path.write_text(TINY_SPEC)
    return str(path)


class TestAxes:
    def test_lists_every_axis(self, capsys):
        assert main(["axes"]) == 0
        out = capsys.readouterr().out
        for name in ("tlb_entries", "fault_profile", "switch_latency_us"):
            assert name in out


class TestPlan:
    def test_plan_table_and_summary_line(self, spec_file, capsys):
        assert main(["plan", "--spec", spec_file]) == 0
        out = capsys.readouterr().out
        assert "Sweep plan 'toy': 2 cells" in out
        assert "tlb_entries=256 (baseline)" in out
        assert "cells: 2 planned, 2 to execute, 0 cached" in out

    def test_plan_sees_cache(self, spec_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["run", "--spec", spec_file, "--cache-dir", cache])
        capsys.readouterr()
        assert main(["plan", "--spec", spec_file, "--cache-dir", cache]) == 0
        assert "cells: 2 planned, 0 to execute, 2 cached" in capsys.readouterr().out

    def test_only_filters(self, spec_file, capsys):
        assert main(["plan", "--spec", spec_file, "--only", "tlb_entries=512"]) == 0
        out = capsys.readouterr().out
        assert "1 cells" in out and "tlb_entries=256" not in out

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: x\naxes:\n  tlb_entriez: [1]\n")
        assert main(["plan", "--spec", str(bad)]) == 2
        assert "unknown axis" in capsys.readouterr().err

    def test_missing_spec_exits_2(self, capsys):
        assert main(["plan", "--spec", "/nonexistent.yaml"]) == 2
        assert "cannot read sweep spec" in capsys.readouterr().err


class TestRun:
    def test_run_rerun_reuse_lines(self, spec_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", "--spec", spec_file, "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "cells: 2 planned, 2 executed, 0 reused (0% cache reuse)" in out
        assert "Sensitivity to tlb_entries" in out
        # Unchanged spec: everything from cache, zero campaigns.
        assert main(["run", "--spec", spec_file, "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert (
            "cells: 2 planned, 0 executed, 2 reused (100% cache reuse)"
            in captured.out
        )
        assert captured.err.count(": cache") == 2

    def test_out_document_feeds_report_and_compare(
        self, spec_file, tmp_path, capsys
    ):
        out_file = tmp_path / "sweep.json"
        assert main(["run", "--spec", spec_file, "--out", str(out_file)]) == 0
        capsys.readouterr()
        document = json.loads(out_file.read_text())
        assert [c["name"] for c in document["sweep"]["cells"]] == [
            "tlb_entries=256",
            "tlb_entries=512",
        ]
        assert main(["report", str(out_file)]) == 0
        assert "Sweep 'toy': 2 cells" in capsys.readouterr().out
        assert main(["compare", str(out_file), "baseline", "tlb_entries=512"]) == 0
        compare_out = capsys.readouterr().out
        assert "Differential: tlb_entries=256 vs tlb_entries=512" in compare_out
        assert "carry no significance flags" in compare_out

    def test_out_dir_cell_is_byte_identical_to_sp2_study_json(
        self, spec_file, tmp_path, capsys
    ):
        """The degeneracy acceptance contract, end to end through both
        CLIs: a no-axes sweep cell file == `sp2-study --json` output."""
        from repro.cli import main as study_main

        solo = tmp_path / "solo.yaml"
        solo.write_text(
            "name: solo\nbase:\n  n_days: 1\n  n_nodes: 8\n  n_users: 4\n  seed: 3\n"
        )
        out_dir = tmp_path / "cells"
        assert main(["run", "--spec", str(solo), "--out-dir", str(out_dir)]) == 0
        study_json = tmp_path / "study.json"
        assert (
            study_main(
                [
                    "--days", "1", "--nodes", "8", "--users", "4",
                    "--seed", "3", "--json", str(study_json),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (out_dir / "base.json").read_bytes() == study_json.read_bytes()

    def test_json_flag_prints_document(self, spec_file, capsys):
        assert main(["run", "--spec", spec_file, "--json"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        end = out.rindex("}") + 1
        document = json.loads(out[start:end])
        assert document["spec"]["name"] == "toy"

    def test_conflicting_only_is_zero_cells_exit_1(self, spec_file, capsys):
        # Repeated --only flags intersect; conflicting values for one
        # axis select nothing — operational failure, not usage error.
        for verb in ("plan", "run"):
            rc = main(
                [
                    verb, "--spec", spec_file,
                    "--only", "tlb_entries=256", "--only", "tlb_entries=512",
                ]
            )
            assert rc == 1
            assert "zero cells" in capsys.readouterr().err

    def test_unknown_selector_exits_2(self, spec_file, capsys):
        assert main(["run", "--spec", spec_file, "--only", "tlb_entries=999"]) == 2
        assert "matches none" in capsys.readouterr().err

    def test_zero_job_cell_exits_1(self, tmp_path, capsys):
        # Demand so low the single day schedules nothing: run finishes,
        # reports, then signals there is nothing to compare.
        spec = tmp_path / "empty.yaml"
        spec.write_text(
            "name: empty\nbase:\n  n_days: 1\n  n_nodes: 8\n  n_users: 2\n"
            "  demand_mean: 0.001\n  seed: 8\n"
        )
        assert main(["run", "--spec", str(spec)]) == 1
        assert "zero jobs" in capsys.readouterr().err


class TestCompareErrors:
    def test_unknown_cell_exits_2(self, spec_file, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        main(["run", "--spec", spec_file, "--out", str(out_file)])
        capsys.readouterr()
        assert main(["compare", str(out_file), "baseline", "tlb_entries=999"]) == 2
        assert "matches none" in capsys.readouterr().err

    def test_unreadable_document_exits_via_systemexit(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "/nonexistent.json", "a", "b"])

    def test_non_sweep_document_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"campaign": {}}')
        assert main(["report", str(bogus)]) == 2
        assert "no 'sweep' block" in capsys.readouterr().err
