"""The wired service: bus flow, rollups, replay determinism."""

import numpy as np
import pytest

from repro.hpm.derived import workload_rates
from repro.telemetry.service import METRIC_CATALOG, TelemetryService


class TestLiveWiring:
    def test_campaign_populates_store(self, small_dataset):
        t = small_dataset.telemetry
        assert t is not None
        # One interval per sample pair.
        assert t.samples_seen == len(small_dataset.collector.samples)
        assert t.intervals_seen == t.samples_seen - 1
        times, values = t.store.window("gflops.system")
        assert len(times) == min(t.intervals_seen, t.store.capacity)
        assert np.all(values >= 0)

    def test_catalog_metrics_present(self, small_dataset):
        t = small_dataset.telemetry
        missing = set(METRIC_CATALOG) - set(t.store.names())
        # fpu.ratio is conditional on FPU1 activity; everything else must
        # appear in any real campaign.
        assert missing <= {"fpu.ratio"}

    def test_online_series_matches_batch_intervals(self, small_dataset):
        """The streaming sys/user ratio must equal recomputing from the
        batch interval algebra — same data, same numbers."""
        t = small_dataset.telemetry
        _, online = t.store.window("fxu.sys_user_ratio")
        batch = np.array(
            [
                workload_rates(iv.totals, iv.seconds, iv.n_nodes).system_user_fxu_ratio
                for iv in small_dataset.collector.intervals()
                if iv.seconds > 0 and iv.n_nodes > 0
            ]
        )
        tail = batch[-len(online):]
        assert np.array_equal(online, tail)

    def test_rollups_track_accounting(self, small_dataset):
        t = small_dataset.telemetry
        records = small_dataset.accounting.records
        assert len(t.rollups) == len(records)
        assert [r.job_id for r in t.rollups.finished] == [r.job_id for r in records]
        first = t.rollups.finished[0]
        assert first.total_mflops == pytest.approx(first.record.total_mflops)
        assert t.rollups.get(first.job_id) is first

    def test_rollup_queries(self, small_dataset):
        t = small_dataset.telemetry
        top = t.rollups.top_by_mflops(5)
        rates = [r.total_mflops for r in top]
        assert rates == sorted(rates, reverse=True)
        horizon = small_dataset.config.n_days * 86400.0
        spans = t.rollups.finished_between(0.0, horizon)
        assert all(0.0 <= r.record.end_time < horizon for r in spans)

    def test_summary_shape(self, small_dataset):
        s = small_dataset.telemetry.summary()
        for key in (
            "samples_seen",
            "intervals_seen",
            "jobs_finished",
            "alerts_total",
            "alerts_by_rule",
            "alerts_suppressed",
        ):
            assert key in s
        assert s["jobs_finished"] == len(small_dataset.accounting)

    def test_bus_topic_counts(self, small_dataset):
        from repro.telemetry.bus import TOPIC_JOB_END, TOPIC_SAMPLE

        bus = small_dataset.telemetry.bus
        assert bus.published[TOPIC_SAMPLE] == len(small_dataset.collector.samples)
        assert bus.published[TOPIC_JOB_END] == len(small_dataset.accounting)


class TestReplay:
    def test_replay_matches_online(self, small_dataset):
        """Offline replay of the recorded samples + records must produce
        the same alerts and the same metric series as the live run."""
        t = small_dataset.telemetry
        r = TelemetryService.replay(
            small_dataset.collector.samples, small_dataset.accounting.records
        )
        assert r.engine.alerts == t.engine.alerts
        assert r.engine.suppressed == t.engine.suppressed
        for name in ("gflops.system", "fxu.sys_user_ratio", "tlb.miss_rate"):
            _, online = t.store.window(name)
            _, replayed = r.store.window(name)
            assert np.array_equal(online, replayed)
        assert [x.job_id for x in r.rollups.finished] == [
            x.job_id for x in t.rollups.finished
        ]
