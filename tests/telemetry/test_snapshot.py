"""Snapshot isolation and bounded-series eviction (PR 7 store growth)."""

import numpy as np
import pytest

from repro.telemetry.store import MetricStore


class TestSeriesSnapshot:
    def test_snapshot_frozen_against_later_appends(self):
        store = MetricStore()
        for i in range(5):
            store.append("m", float(i), float(i))
        snap = store.series("m").snapshot()
        store.append("m", 5.0, 99.0)
        assert snap.count == 5
        assert snap.latest() == (4.0, 4.0)
        assert np.array_equal(snap.values, [0, 1, 2, 3, 4])

    def test_snapshot_summary_matches_live_summary(self):
        store = MetricStore()
        for i in range(20):
            store.append("m", float(i), float(i % 7))
        assert store.series("m").snapshot().summary() == store.summary("m")

    def test_snapshot_window_halfopen(self):
        store = MetricStore()
        for i in range(10):
            store.append("m", float(i * 900), float(i))
        _, values = store.series("m").snapshot().window(900.0, 2700.0)
        assert np.array_equal(values, [1.0, 2.0])

    def test_snapshot_carries_ring_eviction_count(self):
        store = MetricStore(capacity=3)
        for i in range(8):
            store.append("m", float(i), float(i))
        snap = store.series("m").snapshot()
        assert snap.dropped == 5
        assert snap.count == 8
        assert np.array_equal(snap.values, [5, 6, 7])


class TestStoreSnapshot:
    def test_whole_store_one_instant(self):
        store = MetricStore()
        store.append("a", 0.0, 1.0)
        store.append("b", 0.0, 2.0)
        snap = store.snapshot()
        store.append("a", 1.0, 10.0)
        assert snap.names() == ["a", "b"]
        assert "a" in snap
        assert snap["a"].count == 1

    def test_subset_snapshot_skips_unknown(self):
        store = MetricStore()
        store.append("a", 0.0, 1.0)
        snap = store.snapshot(names=["a", "ghost"])
        assert snap.names() == ["a"]

    def test_points_dropped_sums_series(self):
        store = MetricStore(capacity=2)
        for i in range(5):
            store.append("a", float(i), 0.0)
            store.append("b", float(i), 0.0)
        assert store.points_dropped == 6
        assert store.snapshot().points_dropped == 6


class TestBoundedSeries:
    def test_max_series_evicts_least_recently_appended(self):
        store = MetricStore(max_series=2)
        store.append("old", 0.0, 1.0)
        store.append("warm", 1.0, 1.0)
        store.append("warm", 2.0, 1.0)
        store.append("new", 3.0, 1.0)  # evicts "old" (coldest append)
        assert store.names() == ["new", "warm"]
        assert store.series_evicted == 1

    def test_invalid_max_series_rejected(self):
        with pytest.raises(ValueError, match="max_series"):
            MetricStore(max_series=0)

    def test_unbounded_by_default(self):
        store = MetricStore()
        for i in range(50):
            store.append(f"m{i}", 0.0, 0.0)
        assert len(store.names()) == 50
        assert store.series_evicted == 0
