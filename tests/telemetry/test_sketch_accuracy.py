"""Property tests pinning P² sketches to exact ``numpy.percentile``.

The documented accuracy contract for :mod:`repro.telemetry.sketch`
(relied on by docs/STATS.md when the ops benches report latency
percentiles through these sketches):

* **containment** — for *any* stream, the estimate lies within
  ``[min, max]`` of what was observed;
* **exactness** — with five or fewer observations the estimate is the
  exact empirical percentile;
* **rank error** — on smooth unimodal streams of n ≥ 200 the estimate
  lands inside the exact quantile *window* ``[q(p-0.10), q(p+0.10)]``:
  the P² marker invariants bound how far the tracked rank can drift,
  not the value error, so the guarantee is rank-shaped.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.sketch import P2Quantile

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestContainment:
    @given(stream=st.lists(finite, min_size=1, max_size=300), p=st.sampled_from([0.5, 0.9, 0.99]))
    @settings(max_examples=150, deadline=None)
    def test_estimate_never_leaves_observed_range(self, stream, p):
        sketch = P2Quantile(p)
        for x in stream:
            sketch.add(x)
        assert min(stream) <= sketch.value() <= max(stream)


class TestExactSmallStreams:
    @given(stream=st.lists(finite, min_size=1, max_size=5), p=st.sampled_from([0.25, 0.5, 0.95]))
    @settings(max_examples=100, deadline=None)
    def test_five_or_fewer_is_exact(self, stream, p):
        sketch = P2Quantile(p)
        for x in stream:
            sketch.add(x)
        assert sketch.value() == pytest.approx(
            float(np.percentile(stream, p * 100.0)), rel=1e-12, abs=1e-12
        )


class TestRankWindow:
    """The documented smooth-stream bound: within the ±0.10 rank window."""

    RANK_EPS = 0.10

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=200, max_value=2000),
        p=st.sampled_from([0.5, 0.9, 0.99]),
        dist=st.sampled_from(["uniform", "normal", "exponential"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_smooth_streams_stay_in_the_window(self, seed, n, p, dist):
        rng = np.random.default_rng(seed)
        if dist == "uniform":
            data = rng.uniform(0.0, 100.0, n)
        elif dist == "normal":
            data = rng.normal(50.0, 15.0, n)
        else:
            data = rng.exponential(20.0, n)
        sketch = P2Quantile(p)
        for x in data:
            sketch.add(x)
        lo_p = max(0.0, p - self.RANK_EPS) * 100.0
        hi_p = min(1.0, p + self.RANK_EPS) * 100.0
        lo, hi = np.percentile(data, [lo_p, hi_p])
        # A hair of absolute slack keeps degenerate windows (p99 of a
        # short tail) from failing on exact-boundary float comparisons.
        span = float(data.max() - data.min())
        assert lo - 1e-9 * span <= sketch.value() <= hi + 1e-9 * span
