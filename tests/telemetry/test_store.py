"""The ring-buffered metric store: windows, eviction, aggregates."""

import numpy as np
import pytest

from repro.telemetry.store import MetricSeries, MetricStore


class TestMetricSeries:
    def test_append_and_latest(self):
        s = MetricSeries("m", capacity=16)
        s.append(0.0, 1.0)
        s.append(900.0, 2.0)
        assert s.latest() == (900.0, 2.0)
        assert s.size == 2

    def test_window_bounds_are_half_open(self):
        s = MetricSeries("m", capacity=16)
        for i in range(10):
            s.append(i * 100.0, float(i))
        times, values = s.window(200.0, 500.0)
        assert times.tolist() == [200.0, 300.0, 400.0]
        assert values.tolist() == [2.0, 3.0, 4.0]

    def test_unbounded_window_is_chronological(self):
        s = MetricSeries("m", capacity=4)
        for i in range(11):
            s.append(float(i), float(i * i))
        times, values = s.window()
        assert times.tolist() == [7.0, 8.0, 9.0, 10.0]
        assert np.all(np.diff(times) > 0)
        assert values.tolist() == [49.0, 64.0, 81.0, 100.0]

    def test_ring_eviction_drops_oldest(self):
        s = MetricSeries("m", capacity=8)
        for i in range(20):
            s.append(float(i), float(i))
        assert s.size == 8
        assert s.dropped == 12
        times, _ = s.window()
        assert times[0] == 12.0 and times[-1] == 19.0

    def test_aggregates_survive_eviction(self):
        s = MetricSeries("m", capacity=4)
        for i in range(100):
            s.append(float(i), float(i))
        # Raw ring only holds 96..99, but the aggregates saw everything.
        assert s.min == 0.0
        assert s.max == 99.0
        assert s.count == 100

    def test_ewma_tracks_level_shift(self):
        s = MetricSeries("m", capacity=64, ewma_alpha=0.5)
        for i in range(20):
            s.append(float(i), 1.0)
        assert s.ewma == pytest.approx(1.0)
        for i in range(20, 40):
            s.append(float(i), 5.0)
        assert s.ewma == pytest.approx(5.0, abs=0.01)

    def test_out_of_order_append_rejected(self):
        s = MetricSeries("m")
        s.append(100.0, 1.0)
        with pytest.raises(ValueError):
            s.append(50.0, 2.0)

    def test_summary_fields(self):
        s = MetricSeries("m", capacity=8)
        for i in range(10):
            s.append(float(i), float(i))
        summ = s.summary()
        assert summ.name == "m"
        assert summ.count == 10
        assert summ.dropped == 2
        assert summ.last == 9.0
        assert summ.min == 0.0 and summ.max == 9.0
        assert set(summ.quantiles) == {0.5, 0.9, 0.99}

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            MetricSeries("m", capacity=0)


class TestMetricStore:
    def test_lazy_series_creation(self):
        store = MetricStore()
        assert "x" not in store
        store.append("x", 0.0, 1.0)
        assert "x" in store
        assert store.names() == ["x"]

    def test_window_of_unknown_metric_is_empty(self):
        store = MetricStore()
        times, values = store.window("nope")
        assert len(times) == 0 and len(values) == 0

    def test_summary_of_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricStore().summary("nope")

    def test_store_capacity_propagates(self):
        store = MetricStore(capacity=4)
        for i in range(10):
            store.append("x", float(i), float(i))
        assert store.series("x").size == 4
