"""P² streaming quantiles vs exact ``numpy.percentile``."""

import numpy as np
import pytest

from repro.telemetry.sketch import P2Quantile, QuantileSet


def _stream(dist: str, n: int, seed: int = 42) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if dist == "uniform":
        return rng.uniform(0.0, 10.0, n)
    if dist == "normal":
        return rng.normal(5.0, 2.0, n)
    if dist == "exponential":
        return rng.exponential(3.0, n)
    raise ValueError(dist)


class TestP2Quantile:
    @pytest.mark.parametrize("dist", ["uniform", "normal", "exponential"])
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_tracks_known_distributions(self, dist, p):
        data = _stream(dist, 5000)
        sketch = P2Quantile(p)
        for x in data:
            sketch.add(x)
        exact = np.percentile(data, p * 100.0)
        spread = np.percentile(data, 97.5) - np.percentile(data, 2.5)
        assert sketch.value() == pytest.approx(exact, abs=0.05 * spread)

    def test_small_stream_is_exact_percentile(self):
        sketch = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            sketch.add(x)
        assert sketch.value() == pytest.approx(3.0)

    def test_empty_reads_zero(self):
        assert P2Quantile(0.9).value() == 0.0

    def test_estimate_brackets_extremes(self):
        data = _stream("normal", 2000)
        sketch = P2Quantile(0.5)
        for x in data:
            sketch.add(x)
        assert data.min() <= sketch.value() <= data.max()

    def test_invalid_quantile_rejected(self):
        for p in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                P2Quantile(p)

    def test_constant_stream(self):
        sketch = P2Quantile(0.99)
        for _ in range(100):
            sketch.add(7.0)
        assert sketch.value() == pytest.approx(7.0)

    def test_count_tracks_stream(self):
        sketch = P2Quantile(0.5)
        for i in range(37):
            sketch.add(float(i))
        assert sketch.count == 37


class TestQuantileSet:
    def test_values_ordered(self):
        qs = QuantileSet((0.5, 0.9, 0.99))
        for x in _stream("uniform", 3000):
            qs.add(x)
        vals = qs.values()
        assert vals[0.5] < vals[0.9] < vals[0.99]

    def test_getitem(self):
        qs = QuantileSet((0.5,))
        for x in range(100):
            qs.add(float(x))
        assert qs[0.5] == pytest.approx(49.5, abs=2.0)
