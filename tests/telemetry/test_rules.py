"""Anomaly rules on synthetic counter traces."""

import pytest

from repro.hpm.derived import workload_rates
from repro.telemetry.rules import (
    AnomalyEngine,
    FpuImbalanceRule,
    NodeGapRule,
    Observation,
    PagingRule,
    TlbSpikeRule,
    render_alert,
)

INTERVAL = 900.0


def obs(
    time: float,
    *,
    user_fxu_mips: float = 10.0,
    system_fxu_mips: float = 0.5,
    tlb_mips: float = 0.02,
    fpu0_mips: float = 1.7,
    fpu1_mips: float = 1.0,
    missing: tuple[int, ...] = (),
) -> Observation:
    """One synthetic 15-minute interval with the given per-node rates."""
    scale = INTERVAL * 1e6  # Mips/node -> counts on one node
    deltas = {
        "user.fxu0": user_fxu_mips * scale / 2,
        "user.fxu1": user_fxu_mips * scale / 2,
        "system.fxu0": system_fxu_mips * scale / 2,
        "system.fxu1": system_fxu_mips * scale / 2,
        "user.tlb_mis": tlb_mips * scale,
        "user.fpu0": fpu0_mips * scale,
        "user.fpu1": fpu1_mips * scale,
    }
    rates = workload_rates(deltas, INTERVAL, 1)
    return Observation(time=time, rates=rates, nodes_reporting=1, missing=missing)


class TestPagingRule:
    def test_fires_on_system_exceeding_user(self):
        rule = PagingRule()
        found = list(rule.evaluate(obs(0.0, user_fxu_mips=10.0, system_fxu_mips=12.0)))
        assert len(found) == 1
        assert "paging" in found[0][1]

    def test_quiet_on_healthy_ratio(self):
        rule = PagingRule()
        assert not list(rule.evaluate(obs(0.0, user_fxu_mips=10.0, system_fxu_mips=1.0)))

    def test_idle_interval_does_not_false_fire(self):
        """Near-idle: ratio is huge but user work is negligible — the
        activity floor must keep the rule quiet."""
        rule = PagingRule()
        assert not list(
            rule.evaluate(obs(0.0, user_fxu_mips=0.05, system_fxu_mips=0.4))
        )

    def test_cooldown_dedups_repeat_findings(self):
        engine = AnomalyEngine(rules=[PagingRule(cooldown=2 * 3600.0)])
        pathological = dict(user_fxu_mips=10.0, system_fxu_mips=12.0)
        first = engine.observe(obs(0.0, **pathological))
        second = engine.observe(obs(INTERVAL, **pathological))
        third = engine.observe(obs(3 * 3600.0, **pathological))
        assert len(first) == 1 and len(second) == 0 and len(third) == 1
        assert engine.suppressed == 1
        assert len(engine.alerts) == 2

    def test_synthetic_paging_trace_fires_once_per_episode(self):
        """A day-long trace: clean morning, paging afternoon."""
        engine = AnomalyEngine(rules=[PagingRule()])
        for i in range(96):
            paging = 48 <= i < 72
            engine.observe(
                obs(
                    i * INTERVAL,
                    user_fxu_mips=10.0,
                    system_fxu_mips=15.0 if paging else 0.3,
                )
            )
        times = [a.time for a in engine.alerts]
        assert times  # detected online
        assert min(times) == 48 * INTERVAL  # the first pathological interval
        assert all(48 * INTERVAL <= t < 72 * INTERVAL for t in times)


class TestFpuImbalanceRule:
    def test_quiet_on_healthy_ratio(self):
        rule = FpuImbalanceRule()
        assert not list(rule.evaluate(obs(0.0, fpu0_mips=1.7, fpu1_mips=1.0)))

    def test_fires_on_starved_unit1(self):
        rule = FpuImbalanceRule()
        found = list(rule.evaluate(obs(0.0, fpu0_mips=5.0, fpu1_mips=0.5)))
        assert len(found) == 1

    def test_quiet_when_fp_idle(self):
        rule = FpuImbalanceRule()
        assert not list(rule.evaluate(obs(0.0, fpu0_mips=0.01, fpu1_mips=0.001)))


class TestTlbSpikeRule:
    def test_fires_on_spike_after_warmup(self):
        rule = TlbSpikeRule(warmup=8)
        fired = []
        for i in range(32):
            tlb = 0.5 if i == 30 else 0.02
            fired.extend(rule.evaluate(obs(i * INTERVAL, tlb_mips=tlb)))
        assert len(fired) == 1
        assert fired[0][2] == pytest.approx(0.5, rel=1e-6)

    def test_no_fire_during_warmup(self):
        rule = TlbSpikeRule(warmup=8)
        fired = []
        for i in range(4):
            fired.extend(rule.evaluate(obs(i * INTERVAL, tlb_mips=1.0)))
        assert not fired

    def test_idle_intervals_do_not_reset_baseline(self):
        """An overnight lull (no user work) must not make the morning's
        normal rate look like a spike."""
        rule = TlbSpikeRule(warmup=8)
        for i in range(32):
            rule.evaluate(obs(i * INTERVAL, tlb_mips=0.02))
        for i in range(32, 64):  # idle night
            assert not list(
                rule.evaluate(obs(i * INTERVAL, user_fxu_mips=0.0, tlb_mips=0.0))
            )
        back = list(rule.evaluate(obs(64 * INTERVAL, tlb_mips=0.02)))
        assert not back


class TestNodeGapRule:
    def test_alerts_on_down_transition_only(self):
        engine = AnomalyEngine(rules=[NodeGapRule()])
        engine.observe(obs(0.0))
        first = engine.observe(obs(INTERVAL, missing=(3, 7)))
        steady = engine.observe(obs(2 * INTERVAL, missing=(3, 7)))
        assert sorted(a.key for a in first) == ["node-3", "node-7"]
        assert steady == []

    def test_recovery_notice(self):
        engine = AnomalyEngine(rules=[NodeGapRule()])
        engine.observe(obs(0.0, missing=(3,)))
        recovered = engine.observe(obs(INTERVAL))
        assert [a.key for a in recovered] == ["node-3-up"]
        assert recovered[0].message.endswith("reachable again")


class TestEngineBookkeeping:
    def test_counts_by_rule(self):
        engine = AnomalyEngine(rules=[PagingRule(), NodeGapRule()])
        engine.observe(obs(0.0, system_fxu_mips=15.0, missing=(1,)))
        assert engine.counts_by_rule() == {"paging": 1, "node-gap": 1}
        assert [a.rule for a in engine.alerts_for("paging")] == ["paging"]

    def test_render_alert_format(self):
        engine = AnomalyEngine(rules=[PagingRule()])
        (alert,) = engine.observe(obs(90000.0, system_fxu_mips=15.0))
        line = render_alert(alert)
        assert line.startswith("d001 01:00")
        assert "critical" in line and "paging" in line
