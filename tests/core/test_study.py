"""Study orchestration: end-to-end wiring of the campaign."""

import numpy as np
import pytest

from repro.core.study import StudyConfig, WorkloadStudy, run_study
from repro.workload.traces import generate_trace


class TestRun:
    def test_run_produces_dataset(self, small_dataset):
        assert len(small_dataset.collector.samples) > 0
        assert len(small_dataset.accounting) > 0
        assert len(small_dataset.utilization_probes) > 0

    def test_sample_count_matches_cadence(self, small_dataset):
        cfg = small_dataset.config
        expected = int(cfg.n_days * 86400 / cfg.sample_interval) + 1  # + baseline
        assert len(small_dataset.collector.samples) == expected

    def test_daily_series_lengths(self, small_dataset):
        cfg = small_dataset.config
        assert len(small_dataset.daily_gflops()) == cfg.n_days
        assert len(small_dataset.daily_utilization()) == cfg.n_days

    def test_some_flops_happened(self, small_dataset):
        assert small_dataset.daily_gflops().sum() > 0

    def test_utilization_in_unit_interval(self, small_dataset):
        u = small_dataset.daily_utilization()
        assert (u >= 0).all() and (u <= 1).all()

    def test_interval_gflops_nonnegative(self, small_dataset):
        _, g = small_dataset.interval_gflops()
        assert (g >= 0).all()

    def test_determinism(self):
        a = run_study(seed=11, n_days=2, n_nodes=16, n_users=5)
        b = run_study(seed=11, n_days=2, n_nodes=16, n_users=5)
        np.testing.assert_allclose(a.daily_gflops(), b.daily_gflops())
        assert len(a.accounting) == len(b.accounting)

    def test_trace_machine_mismatch_rejected(self):
        study = WorkloadStudy(StudyConfig(n_days=1, n_nodes=16))
        trace = generate_trace(0, n_days=1, n_nodes=32)
        with pytest.raises(ValueError, match="generated for 32"):
            study.run(trace)

    def test_external_trace_accepted(self):
        trace = generate_trace(5, n_days=1, n_nodes=16, n_users=4)
        ds = WorkloadStudy(StudyConfig(n_days=1, n_nodes=16)).run(trace)
        assert ds.trace is trace


class TestConsistency:
    def test_counters_monotonic_across_samples(self, small_dataset):
        samples = small_dataset.collector.samples
        for before, after in zip(samples[:100], samples[1:101]):
            assert (after.matrix - before.matrix >= 0).all()

    def test_system_gflops_consistent_with_job_flops(self, small_dataset):
        """Flops seen by the 15-min sampler ≈ flops accounted to jobs
        plus still-running work (jobs produce all user-mode flops)."""
        ivs = small_dataset.collector.intervals()
        sampled = sum(
            iv.totals.get("user.fpu0_fp_add", 0)
            + iv.totals.get("user.fpu1_fp_add", 0)
            + iv.totals.get("user.fpu0_fp_mul", 0)
            + iv.totals.get("user.fpu1_fp_mul", 0)
            + 2 * iv.totals.get("user.fpu0_fp_muladd", 0)
            + 2 * iv.totals.get("user.fpu1_fp_muladd", 0)
            for iv in ivs
        )
        from repro.pbs.job import JobRecord

        accounted = sum(
            JobRecord.flops_from_deltas(r.summed_deltas())
            for r in small_dataset.accounting.records
        )
        assert accounted <= sampled * 1.001
        assert accounted >= 0.5 * sampled  # most work finishes in-horizon

    def test_busy_days_need_busy_probes(self, small_dataset):
        g = small_dataset.daily_gflops()
        u = small_dataset.daily_utilization()
        # Performance requires utilization: the top-G day cannot be idle.
        assert u[int(np.argmax(g))] > 0.2
