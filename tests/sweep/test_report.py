"""Differential reports: compare flags exactly the non-overlapping CIs."""

from __future__ import annotations

import pytest

from repro.sweep.report import (
    FLAG,
    cis_overlap,
    compare_cells,
    find_cell,
    render_compare,
    render_sweep_report,
    sensitivity_tables,
)


def est(mean, half):
    return {
        "mean": mean,
        "ci_low": mean - half,
        "ci_high": mean + half,
        "n": 3,
        "rule": "fixed-seeds",
    }


def cell(name, overrides, metrics, estimates=None):
    return {
        "name": name,
        "overrides": overrides,
        "settings": overrides,
        "metrics": metrics,
        "estimates": estimates,
    }


def document(cells, axes=None):
    return {
        "spec": {"name": "fix", "axes": axes or {}},
        "sweep": {
            "name": "fix",
            "cells": cells,
            "executed": len(cells),
            "reused": 0,
        },
    }


#: Three metrics, engineered so exactly ONE pair of CIs is disjoint:
#:   campaign.availability   — [0.99, 1.01] vs [0.79, 0.81]: disjoint
#:   campaign.jobs_accounted — [90, 110] vs [100, 120]: overlap
#:   campaign.utilization_mean — identical: overlap
REPEAT_DOC = document(
    [
        cell(
            "fault_profile=none",
            {"fault_profile": None},
            {
                "campaign.availability": 1.0,
                "campaign.jobs_accounted": 100.0,
                "campaign.utilization_mean": 0.5,
            },
            {
                "campaign.availability": est(1.0, 0.01),
                "campaign.jobs_accounted": est(100.0, 10.0),
                "campaign.utilization_mean": est(0.5, 0.05),
            },
        ),
        cell(
            "fault_profile=pathological",
            {"fault_profile": "pathological"},
            {
                "campaign.availability": 0.8,
                "campaign.jobs_accounted": 110.0,
                "campaign.utilization_mean": 0.5,
            },
            {
                "campaign.availability": est(0.8, 0.01),
                "campaign.jobs_accounted": est(110.0, 10.0),
                "campaign.utilization_mean": est(0.5, 0.05),
            },
        ),
    ],
    axes={"fault_profile": [None, "pathological"]},
)


class TestCisOverlap:
    def test_disjoint(self):
        assert not cis_overlap(est(1.0, 0.01), est(0.8, 0.01))

    def test_touching_counts_as_overlap(self):
        assert cis_overlap(
            {"ci_low": 0.0, "ci_high": 1.0}, {"ci_low": 1.0, "ci_high": 2.0}
        )

    def test_nested(self):
        assert cis_overlap(est(0.5, 0.5), est(0.5, 0.1))


class TestCompare:
    def test_flags_exactly_the_disjoint_metrics(self):
        table, flagged, compared = compare_cells(
            REPEAT_DOC, "fault_profile=none", "fault_profile=pathological"
        )
        assert compared == 3
        assert flagged == 1
        flagged_rows = [r for r in table.rows if r[-1] == FLAG]
        assert [r[0] for r in flagged_rows] == ["campaign.availability"]

    def test_point_value_cells_never_flag(self):
        doc = document(
            [
                cell("a", {"x": 1}, {"campaign.jobs_accounted": 100.0}),
                cell("b", {"x": 2}, {"campaign.jobs_accounted": 9000.0}),
            ]
        )
        table, flagged, compared = compare_cells(doc, "a", "b")
        assert compared == 1 and flagged == 0

    def test_render_footer_counts(self):
        text = render_compare(
            REPEAT_DOC, "fault_profile=none", "fault_profile=pathological"
        )
        assert "non-overlapping deltas: 1 of 3 metrics" in text

    def test_render_footer_single_seed(self):
        doc = document(
            [
                cell("a", {"x": 1}, {"campaign.jobs_accounted": 100.0}),
                cell("b", {"x": 2}, {"campaign.jobs_accounted": 110.0}),
            ]
        )
        text = render_compare(doc, "a", "b")
        assert "carry no significance flags" in text

    def test_unknown_cell_is_one_line_error(self):
        with pytest.raises(ValueError, match="no cell named 'nope'") as e:
            compare_cells(REPEAT_DOC, "nope", "fault_profile=none")
        assert "\n" not in str(e.value)


class TestFindCell:
    def test_found(self):
        assert find_cell(REPEAT_DOC, "fault_profile=none")["overrides"] == {
            "fault_profile": None
        }

    def test_document_without_sweep_block(self):
        with pytest.raises(ValueError, match="no 'sweep' block"):
            find_cell({"campaign": {}}, "base")


class TestSensitivity:
    def test_marginal_means(self):
        doc = document(
            [
                cell("x=1,y=a", {"x": 1, "y": "a"}, {"campaign.jobs_accounted": 10.0}),
                cell("x=1,y=b", {"x": 1, "y": "b"}, {"campaign.jobs_accounted": 20.0}),
                cell("x=2,y=a", {"x": 2, "y": "a"}, {"campaign.jobs_accounted": 30.0}),
                cell("x=2,y=b", {"x": 2, "y": "b"}, {"campaign.jobs_accounted": 40.0}),
            ],
            axes={"x": [1, 2], "y": ["a", "b"]},
        )
        tables = sensitivity_tables(doc)
        assert len(tables) == 2
        x_rows = {r[0]: r for r in tables[0].rows}
        jobs_col = tables[0].columns.index("Jobs")
        assert x_rows["1"][jobs_col] == pytest.approx(15.0)
        assert x_rows["2"][jobs_col] == pytest.approx(35.0)
        y_rows = {r[0]: r for r in tables[1].rows}
        assert y_rows["a"][jobs_col] == pytest.approx(20.0)
        assert y_rows["b"][jobs_col] == pytest.approx(30.0)

    def test_report_renders_cells_and_axes(self):
        text = render_sweep_report(REPEAT_DOC)
        assert "Sweep 'fix': 2 cells" in text
        assert "Sensitivity to fault_profile" in text
