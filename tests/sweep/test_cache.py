"""Cell cache: any defect reads as a miss, never a wrong answer."""

from __future__ import annotations

import os

from repro.sweep.cache import cell_path, load_cell, save_cell
from repro.sweep.planner import CELL_VERSION

FP = "deadbeef" * 8


def doc(**kw):
    base = {
        "version": CELL_VERSION,
        "fingerprint": FP,
        "name": "base",
        "overrides": {},
        "settings": {"n_days": 1},
        "summary": {"campaign": {"jobs_accounted": 7}},
        "metrics": {"campaign.jobs_accounted": 7.0},
        "repeat": None,
        "estimates": None,
        "samples": None,
    }
    base.update(kw)
    return base


def test_roundtrip(tmp_path):
    path = save_cell(str(tmp_path), doc())
    assert os.path.exists(path)
    assert load_cell(str(tmp_path), FP) == doc()


def test_missing_is_none(tmp_path):
    assert load_cell(str(tmp_path), FP) is None


def test_missing_dir_is_none(tmp_path):
    assert load_cell(str(tmp_path / "nowhere"), FP) is None


def test_truncated_json_is_none(tmp_path):
    save_cell(str(tmp_path), doc())
    path = cell_path(str(tmp_path), FP)
    text = open(path).read()
    open(path, "w").write(text[: len(text) // 2])
    assert load_cell(str(tmp_path), FP) is None


def test_non_dict_payload_is_none(tmp_path):
    open(cell_path(str(tmp_path), FP), "w").write("[1, 2]\n")
    assert load_cell(str(tmp_path), FP) is None


def test_version_mismatch_is_none(tmp_path):
    save_cell(str(tmp_path), doc(version=CELL_VERSION + 1))
    assert load_cell(str(tmp_path), FP) is None


def test_fingerprint_mismatch_is_none(tmp_path):
    # A file renamed (or hand-edited) to the wrong fingerprint must not
    # serve another cell's results.
    other = "feedface" * 8
    save_cell(str(tmp_path), doc())
    os.rename(cell_path(str(tmp_path), FP), cell_path(str(tmp_path), other))
    assert load_cell(str(tmp_path), other) is None


def test_save_creates_dir_and_leaves_no_temp_files(tmp_path):
    cache = tmp_path / "fresh" / "cache"
    save_cell(str(cache), doc())
    leftovers = [p for p in os.listdir(cache) if ".tmp." in p]
    assert leftovers == []


def test_overwrite_is_atomic_replace(tmp_path):
    save_cell(str(tmp_path), doc())
    save_cell(str(tmp_path), doc(metrics={"campaign.jobs_accounted": 9.0}))
    assert load_cell(str(tmp_path), FP)["metrics"] == {
        "campaign.jobs_accounted": 9.0
    }
