"""Plan expansion: ordering, fingerprints, dedup, selectors."""

from __future__ import annotations

import pytest

from repro.sweep import (
    SweepSpec,
    cell_fingerprint,
    parse_selector,
    plan_sweep,
    select_cell,
)

BASE = {"n_days": 2, "n_nodes": 16, "n_users": 6, "seed": 3}


def make(**kw):
    kw.setdefault("name", "t")
    kw.setdefault("base", dict(BASE))
    kw.setdefault(
        "axes",
        {"tlb_entries": [256, 512], "fault_profile": [None, "pathological"]},
    )
    return SweepSpec.from_dict(kw)


class TestExpansion:
    def test_cross_product_size(self):
        plan = plan_sweep(make())
        assert plan.n_cells == 4

    def test_first_axis_varies_slowest(self):
        plan = plan_sweep(make())
        # Default baseline (first values) leads; the rest keep grid
        # order: nested loops with the first axis outermost.
        names = [c.name for c in plan.cells]
        assert names == [
            "tlb_entries=256,fault_profile=none",
            "tlb_entries=256,fault_profile=pathological",
            "tlb_entries=512,fault_profile=none",
            "tlb_entries=512,fault_profile=pathological",
        ]

    def test_indices_are_sequential(self):
        plan = plan_sweep(make())
        assert [c.index for c in plan.cells] == [0, 1, 2, 3]

    def test_no_axes_single_cell_named_base(self):
        plan = plan_sweep(make(axes={}))
        assert plan.n_cells == 1
        assert plan.cells[0].name == "base"
        assert plan.cells[0].is_baseline

    def test_settings_merge_base_and_overrides(self):
        plan = plan_sweep(make())
        cell = plan.cell("tlb_entries=512,fault_profile=pathological")
        assert cell.settings["n_days"] == 2
        assert cell.settings["tlb_entries"] == 512
        assert cell.config.machine_config.tlb.entries == 512
        assert cell.config.fault_profile.name == "pathological"


class TestBaselineOrdering:
    def test_default_baseline_is_first_values(self):
        plan = plan_sweep(make())
        assert plan.baseline is plan.cells[0]
        assert plan.baseline.overrides == {
            "tlb_entries": 256,
            "fault_profile": None,
        }

    def test_explicit_baseline_moves_to_front(self):
        plan = plan_sweep(
            make(baseline={"tlb_entries": 512, "fault_profile": "pathological"})
        )
        assert plan.cells[0].name == "tlb_entries=512,fault_profile=pathological"
        assert plan.cells[0].is_baseline
        # Grid order preserved for the rest.
        assert [c.name for c in plan.cells[1:]] == [
            "tlb_entries=256,fault_profile=none",
            "tlb_entries=256,fault_profile=pathological",
            "tlb_entries=512,fault_profile=none",
        ]

    def test_exactly_one_baseline(self):
        plan = plan_sweep(make())
        assert sum(c.is_baseline for c in plan.cells) == 1


class TestFingerprints:
    def test_fingerprints_are_unique(self):
        plan = plan_sweep(make())
        fps = [c.fingerprint for c in plan.cells]
        assert len(set(fps)) == len(fps)

    def test_duplicate_fingerprint_is_one_line_error(self):
        # 'none' (the null profile's name) and null resolve to the same
        # config — the planner must refuse, not silently halve the sweep.
        spec = make(axes={"fault_profile": ["none", None]})
        with pytest.raises(ValueError, match="same configuration") as e:
            plan_sweep(spec)
        assert "\n" not in str(e.value)

    def test_fingerprint_ignores_name(self):
        a = plan_sweep(make(name="a")).cells[0]
        b = plan_sweep(make(name="b")).cells[0]
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_includes_shard_days(self):
        a = plan_sweep(make()).cells[0]
        b = plan_sweep(make(shard_days=1)).cells[0]
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_includes_repeat(self):
        a = plan_sweep(make()).cells[0]
        b = plan_sweep(make(repeat={"seeds": [1, 2]})).cells[0]
        c = plan_sweep(make(repeat={"seeds": [1, 2, 3]})).cells[0]
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3

    def test_fingerprint_direct_matches_plan(self):
        spec = make()
        plan = plan_sweep(spec)
        for cell in plan.cells:
            assert cell_fingerprint(cell.config, spec) == cell.fingerprint


class TestOnly:
    def test_only_filters_cells(self):
        plan = plan_sweep(make(), only={"tlb_entries": 512})
        assert [c.name for c in plan.cells] == [
            "tlb_entries=512,fault_profile=none",
            "tlb_entries=512,fault_profile=pathological",
        ]

    def test_only_can_exclude_baseline(self):
        plan = plan_sweep(make(), only={"tlb_entries": 512})
        assert plan.baseline is None

    def test_only_reindexes(self):
        plan = plan_sweep(make(), only={"tlb_entries": 512})
        assert [c.index for c in plan.cells] == [0, 1]

    def test_only_unswept_value_gives_zero_cells(self):
        plan = plan_sweep(make(), only={"tlb_entries": 512, "fault_profile": "mild"})
        assert plan.n_cells == 0

    def test_only_unknown_axis_raises(self):
        with pytest.raises(ValueError, match="not a swept axis"):
            plan_sweep(make(), only={"page_kb": 4})


class TestSelectors:
    def test_parse_selector_matches_declared_values(self):
        spec = make()
        assert parse_selector(spec, "tlb_entries=512") == {"tlb_entries": 512}
        assert parse_selector(spec, "fault_profile=none") == {"fault_profile": None}

    def test_parse_selector_multi(self):
        spec = make()
        sel = parse_selector(spec, "tlb_entries=256,fault_profile=pathological")
        assert sel == {"tlb_entries": 256, "fault_profile": "pathological"}

    def test_parse_selector_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="not a swept axis"):
            parse_selector(make(), "page_kb=4")

    def test_parse_selector_rejects_undeclared_value(self):
        with pytest.raises(ValueError, match="matches none"):
            parse_selector(make(), "tlb_entries=1024")

    def test_parse_selector_rejects_bare_word(self):
        with pytest.raises(ValueError, match="expected axis=value"):
            parse_selector(make(), "tlb_entries")

    def test_select_cell_baseline(self):
        plan = plan_sweep(make())
        assert select_cell(plan, "baseline") is plan.baseline

    def test_select_cell_full_name(self):
        plan = plan_sweep(make())
        cell = select_cell(plan, "tlb_entries=512,fault_profile=pathological")
        assert cell.overrides == {
            "tlb_entries": 512,
            "fault_profile": "pathological",
        }

    def test_select_cell_partial_fills_from_baseline(self):
        plan = plan_sweep(make())
        cell = select_cell(plan, "fault_profile=pathological")
        assert cell.overrides == {
            "tlb_entries": 256,  # baseline value
            "fault_profile": "pathological",
        }

    def test_select_cell_missing_from_filtered_plan(self):
        plan = plan_sweep(make(), only={"tlb_entries": 512})
        with pytest.raises(ValueError, match="not in"):
            select_cell(plan, "tlb_entries=256,fault_profile=none")
