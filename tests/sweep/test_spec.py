"""SweepSpec validation: every bad spec dies with a one-line error."""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    AXES,
    RepeatSpec,
    SweepSpec,
    load_spec_file,
    parse_simple_yaml,
    resolve_config,
)

BASE = {"n_days": 2, "n_nodes": 16, "n_users": 6, "seed": 3}


def make(**kw):
    kw.setdefault("name", "t")
    kw.setdefault("base", dict(BASE))
    kw.setdefault("axes", {"tlb_entries": [256, 512]})
    return SweepSpec.from_dict(kw)


class TestValidation:
    def test_valid_spec_builds(self):
        spec = make()
        assert spec.n_cells == 2

    def test_unknown_axis_is_one_line_error(self):
        with pytest.raises(ValueError, match="unknown axis 'tlb_entriez'") as e:
            make(axes={"tlb_entriez": [256]})
        assert "\n" not in str(e.value).replace("known axes:", "")

    def test_unknown_base_key(self):
        with pytest.raises(ValueError, match="unknown base setting 'n_dayz'"):
            make(base={"n_dayz": 2})

    def test_wrong_type_value(self):
        with pytest.raises(ValueError, match="tlb_entries"):
            make(axes={"tlb_entries": [256, "lots"]})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ValueError, match="tlb_entries"):
            make(axes={"tlb_entries": [True]})

    def test_axis_collides_with_base(self):
        with pytest.raises(
            ValueError, match="axis 'seed' also appears as a fixed base setting"
        ):
            make(axes={"seed": [1, 2]})

    def test_empty_axis_is_empty_cross_product(self):
        with pytest.raises(
            ValueError, match="axis 'tlb_entries' has no values"
        ):
            make(axes={"tlb_entries": []})

    def test_non_list_axis(self):
        with pytest.raises(ValueError, match="must list its values"):
            make(axes={"tlb_entries": 256})

    def test_duplicate_values_within_axis(self):
        with pytest.raises(ValueError, match="duplicate value"):
            make(axes={"tlb_entries": [256, 256]})

    def test_unknown_choice(self):
        with pytest.raises(ValueError, match="fault_profile"):
            make(axes={"fault_profile": ["catastrophic"]})

    def test_negative_axis_value(self):
        with pytest.raises(ValueError, match="n_days"):
            make(axes={"n_days": [-1]})

    def test_seed_zero_is_legal(self):
        spec = make(base={}, axes={"seed": [0, 1]})
        assert spec.n_cells == 2

    def test_baseline_must_use_axis_values(self):
        with pytest.raises(ValueError, match="baseline"):
            make(baseline={"tlb_entries": 1024})

    def test_baseline_unknown_axis(self):
        with pytest.raises(ValueError, match="baseline"):
            make(baseline={"page_kb": 4})

    def test_seed_axis_conflicts_with_repeat(self):
        with pytest.raises(ValueError, match="seed"):
            make(
                base={},
                axes={"seed": [0, 1]},
                repeat={"seeds": [1, 2]},
            )

    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="unknown"):
            make(extra_knob=1)

    def test_errors_are_single_line(self):
        cases = [
            dict(axes={"bogus": [1]}),
            dict(axes={"tlb_entries": [256, "x"]}),
            dict(axes={"seed": [1]}),
            dict(axes={"tlb_entries": []}),
            dict(axes={"tlb_entries": [256, 256]}),
        ]
        for kw in cases:
            with pytest.raises(ValueError) as e:
                make(**kw)
            assert "\n" not in str(e.value), kw


class TestRepeatSpec:
    def test_seeds_mode(self):
        r = RepeatSpec.from_dict({"seeds": [1, 2, 3]})
        assert r.seeds == (1, 2, 3) and r.target_rse is None

    def test_adaptive_mode(self):
        r = RepeatSpec.from_dict({"target_rse": 0.1, "max_repeats": 8})
        assert r.target_rse == 0.1

    def test_needs_one_mode(self):
        with pytest.raises(ValueError, match="repeat"):
            RepeatSpec.from_dict({})

    def test_not_both_modes(self):
        with pytest.raises(ValueError, match="repeat"):
            RepeatSpec.from_dict({"seeds": [1], "target_rse": 0.1})

    def test_duplicate_seeds(self):
        with pytest.raises(ValueError, match="seed"):
            RepeatSpec.from_dict({"seeds": [1, 1]})

    def test_token_is_stable(self):
        a = RepeatSpec.from_dict({"seeds": [1, 2]})
        b = RepeatSpec.from_dict({"seeds": [1, 2]})
        assert a.token() == b.token()


class TestResolveConfig:
    def test_defaults_match_study_defaults(self):
        # resolve_config's empty-assignment default is the 30-day CLI
        # default, not StudyConfig's 270-day paper horizon; everything
        # else matches StudyConfig() exactly.
        from repro.core.study import StudyConfig

        assert resolve_config({}) == StudyConfig(n_days=30)

    def test_machine_knobs_build_machine_config(self):
        cfg = resolve_config({"tlb_entries": 1024, "page_kb": 16, "memory_mb": 256})
        assert cfg.machine_config.tlb.entries == 1024
        assert cfg.machine_config.tlb.page_bytes == 16 * 1024
        assert cfg.machine_config.memory_bytes == 256 * 1024 * 1024

    def test_switch_knobs_build_switch_config(self):
        cfg = resolve_config({"switch_latency_us": 90, "switch_bandwidth_mb_s": 17})
        assert cfg.switch_config.latency_seconds == pytest.approx(90e-6)
        assert cfg.switch_config.bandwidth_bytes_per_s == pytest.approx(17e6)

    def test_fault_profile_by_name(self):
        cfg = resolve_config({"fault_profile": "pathological"})
        assert cfg.fault_profile.name == "pathological"
        assert resolve_config({"fault_profile": None}).fault_profile is None

    def test_scheduler_knobs(self):
        cfg = resolve_config({"scheduler_policy": "fifo", "scheduler_wide_threshold": 8})
        assert cfg.scheduler_policy == "fifo"
        assert cfg.scheduler_wide_threshold == 8

    def test_every_declared_axis_resolves(self):
        for name, axis in AXES.items():
            value = axis.choices[0] if axis.choices else 2
            if name == "demand_mean":
                value = 0.5
            resolve_config({name: value})


class TestLoaders:
    def test_json_roundtrip(self, tmp_path):
        spec = make(baseline={"tlb_entries": 512})
        p = tmp_path / "s.json"
        p.write_text(json.dumps(spec.to_dict()))
        assert load_spec_file(str(p)).to_dict() == spec.to_dict()

    def test_yaml_subset(self, tmp_path):
        p = tmp_path / "s.yaml"
        p.write_text(
            "# comment\n"
            "name: demo\n"
            "base:\n"
            "  n_days: 2\n"
            "  n_nodes: 16\n"
            "  n_users: 6\n"
            "axes:\n"
            "  tlb_entries: [256, 512]\n"
            "  fault_profile:\n"
            "    - none\n"
            "    - pathological\n"
            "repeat:\n"
            "  seeds: [1, 2]\n"
        )
        spec = load_spec_file(str(p))
        assert spec.name == "demo"
        assert spec.axes["tlb_entries"] == [256, 512]
        assert spec.axes["fault_profile"] == [None, "pathological"]
        assert spec.repeat.seeds == (1, 2)

    def test_yaml_scalars(self):
        doc = parse_simple_yaml(
            "a: 1\nb: 1.5\nc: true\nd: null\ne: 'quoted # not comment'\nf: plain\n"
        )
        assert doc == {
            "a": 1,
            "b": 1.5,
            "c": True,
            "d": None,
            "e": "quoted # not comment",
            "f": "plain",
        }

    def test_yaml_rejects_tabs(self):
        with pytest.raises(ValueError, match="tab"):
            parse_simple_yaml("a:\n\tb: 1\n")

    def test_yaml_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_simple_yaml("a: 1\na: 2\n")

    def test_missing_file_is_one_line_error(self):
        with pytest.raises(ValueError, match="cannot read sweep spec"):
            load_spec_file("/nonexistent/spec.yaml")
