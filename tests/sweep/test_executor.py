"""Cell execution: degeneracy, caching, repeat estimates, zero-job cells."""

from __future__ import annotations

import pytest

import repro.sweep.executor as executor_mod
from repro.core.study import WorkloadStudy
from repro.analysis.export import dataset_summary
from repro.sweep import (
    SweepSpec,
    execute_cell,
    plan_sweep,
    resolve_config,
    run_sweep,
)

#: Small enough to run in a unit test, big enough to schedule real jobs.
TINY = {"n_days": 1, "n_nodes": 8, "n_users": 4, "seed": 3}

#: A deterministic configuration that accounts zero jobs (demand so low
#: the single day schedules nothing) — the executor's exit-1 signal.
ZERO_JOBS = {
    "n_days": 1,
    "n_nodes": 8,
    "n_users": 2,
    "demand_mean": 0.001,
    "seed": 8,
}


def make(**kw):
    kw.setdefault("name", "t")
    kw.setdefault("base", dict(TINY))
    kw.setdefault("axes", {})
    return SweepSpec.from_dict(kw)


class TestDegeneracy:
    def test_no_axes_cell_summary_is_the_study_summary(self):
        """The acceptance contract: a sweep of nothing IS sp2-study."""
        spec = make()
        plan = plan_sweep(spec)
        document = execute_cell(plan.cells[0], spec)
        expected = dataset_summary(WorkloadStudy(resolve_config(TINY)).run())
        assert document["summary"] == expected

    def test_workers_do_not_change_the_document(self):
        spec = make(shard_days=1)
        plan = plan_sweep(spec)
        one = execute_cell(plan.cells[0], spec, workers=1)
        two = execute_cell(plan.cells[0], spec, workers=2)
        assert one == two


class TestCaching:
    def test_first_run_executes_everything(self, tmp_path):
        plan = plan_sweep(make(axes={"tlb_entries": [256, 512]}))
        result = run_sweep(plan, cache_dir=str(tmp_path))
        assert result.executed == 2 and result.reused == 0
        assert result.reuse_fraction == 0.0

    def test_unchanged_spec_rerun_executes_zero_campaigns(
        self, tmp_path, monkeypatch
    ):
        plan = plan_sweep(make(axes={"tlb_entries": [256, 512]}))
        first = run_sweep(plan, cache_dir=str(tmp_path))

        def boom(*a, **kw):  # any execution now is a cache failure
            raise AssertionError("re-run executed a campaign")

        monkeypatch.setattr(executor_mod, "execute_cell", boom)
        second = run_sweep(plan, cache_dir=str(tmp_path))
        assert second.executed == 0 and second.reused == 2
        assert second.reuse_fraction == 1.0
        assert [r.document for r in second.results] == [
            r.document for r in first.results
        ]

    def test_edited_spec_reexecutes_only_changed_cells(self, tmp_path):
        run_sweep(
            plan_sweep(make(axes={"tlb_entries": [256, 512]})),
            cache_dir=str(tmp_path),
        )
        grown = run_sweep(
            plan_sweep(make(axes={"tlb_entries": [256, 512, 1024]})),
            cache_dir=str(tmp_path),
        )
        assert grown.reused == 2 and grown.executed == 1
        assert [r.cached for r in grown.results] == [True, True, False]

    def test_force_recomputes(self, tmp_path):
        plan = plan_sweep(make())
        run_sweep(plan, cache_dir=str(tmp_path))
        forced = run_sweep(plan, cache_dir=str(tmp_path), force=True)
        assert forced.executed == 1 and forced.reused == 0

    def test_no_cache_dir_always_executes(self):
        plan = plan_sweep(make())
        result = run_sweep(plan)
        assert result.executed == 1 and result.reused == 0

    def test_progress_hook_sees_cached_flag(self, tmp_path):
        plan = plan_sweep(make())
        seen: list[tuple[str, bool]] = []
        run_sweep(
            plan,
            cache_dir=str(tmp_path),
            progress=lambda cell, cached: seen.append((cell.name, cached)),
        )
        run_sweep(
            plan,
            cache_dir=str(tmp_path),
            progress=lambda cell, cached: seen.append((cell.name, cached)),
        )
        assert seen == [("base", False), ("base", True)]


class TestRepeat:
    def test_repeat_cells_carry_estimates(self):
        spec = make(repeat={"seeds": [1, 2]})
        plan = plan_sweep(spec)
        document = execute_cell(plan.cells[0], spec)
        assert document["summary"] is None
        assert document["repeat"]["n"] == 2
        est = document["estimates"]["campaign.jobs_accounted"]
        assert est["ci_low"] <= est["mean"] <= est["ci_high"]
        assert est["rule"] == document["repeat"]["rule"]
        # Point metrics are the across-seed means of the samples.
        samples = document["samples"]["campaign.jobs_accounted"]["values"]
        mean = sum(samples) / len(samples)
        assert document["metrics"]["campaign.jobs_accounted"] == pytest.approx(mean)

    def test_repeat_jobs_sums_all_seeds(self):
        spec = make(repeat={"seeds": [1, 2]})
        plan = plan_sweep(spec)
        result = run_sweep(plan)
        samples = result.results[0].document["samples"][
            "campaign.jobs_accounted"
        ]["values"]
        assert result.results[0].jobs == pytest.approx(sum(samples))


class TestZeroJobs:
    def test_zero_job_cell_is_reported(self):
        result = run_sweep(plan_sweep(make(base=dict(ZERO_JOBS))))
        assert result.zero_job_cells() == ["base"]
        assert result.results[0].jobs == 0

    def test_healthy_cell_is_not(self):
        result = run_sweep(plan_sweep(make()))
        assert result.zero_job_cells() == []


class TestSweepDocument:
    def test_document_shape(self, tmp_path):
        spec = make(axes={"tlb_entries": [256, 512]})
        result = run_sweep(plan_sweep(spec), cache_dir=str(tmp_path))
        document = result.document()
        assert document["spec"] == spec.to_dict()
        sweep = document["sweep"]
        assert sweep["name"] == "t"
        assert sweep["executed"] == 2 and sweep["reused"] == 0
        assert [c["name"] for c in sweep["cells"]] == [
            "tlb_entries=256",
            "tlb_entries=512",
        ]
