"""Golden-file plumbing.

Golden files pin the paper-facing artifacts (Tables 1–4, the headline
comparison, the ``--json`` summary) so a perf refactor cannot silently
shift the paper's numbers.  When a change *intentionally* moves them,
regenerate with::

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden

and review the diff like any other code change (see CONTRIBUTING.md).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.study import StudyDataset, run_study

GOLDEN_DIR = pathlib.Path(__file__).parent / "data"


class GoldenChecker:
    def __init__(self, update: bool) -> None:
        self.update = update

    def check(self, name: str, text: str) -> None:
        path = GOLDEN_DIR / name
        if self.update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            return
        assert path.exists(), (
            f"golden file {path} missing — generate it with "
            f"`pytest tests/golden --update-golden`"
        )
        expected = path.read_text()
        assert text == expected, (
            f"{name} drifted from its golden copy. If the change is "
            f"intentional, regenerate with `pytest tests/golden "
            f"--update-golden` and commit the diff."
        )


@pytest.fixture
def golden(request: pytest.FixtureRequest) -> GoldenChecker:
    return GoldenChecker(bool(request.config.getoption("--update-golden")))


@pytest.fixture(scope="module")
def default_month() -> StudyDataset:
    """A 30-day campaign at the paper's scale and the *default* seed —
    the configuration whose numbers the golden files pin."""
    return run_study(seed=0, n_days=30, n_nodes=144, n_users=60)
