"""Golden regression tests for the paper-facing artifacts.

Everything here is derived from the *default-seed* 30-day campaign at
the paper's scale (144 nodes, 60 users): Tables 1–4, the headline
report, and the ``--json`` campaign summary.  A performance refactor —
sharding, vectorization, caching — must leave every byte unchanged; an
intentional model change regenerates the files with ``--update-golden``
(see tests/golden/conftest.py).
"""

from __future__ import annotations

from repro.analysis import paper_comparison, table1, table2, table3, table4
from repro.analysis.export import dataset_to_json
from repro.analysis.opsreport import campaign_ops_digest
from repro.analysis.report import headline_report


class TestTables:
    def test_table1(self, golden):
        golden.check("table1.txt", table1().render() + "\n")

    def test_table2(self, default_month, golden):
        golden.check("table2.txt", table2(default_month).render() + "\n")

    def test_table3(self, default_month, golden):
        golden.check("table3.txt", table3(default_month).render() + "\n")

    def test_table4(self, default_month, golden):
        golden.check("table4.txt", table4(default_month).render() + "\n")


class TestHeadlines:
    def test_headline_report_text(self, default_month, golden):
        golden.check("headlines.txt", paper_comparison(default_month) + "\n")

    def test_paper_scale_bands(self, default_month):
        """The abstract's claims: ≈1.3 Gflops sustained ≈ 3% of peak.

        Bands, not exact matches — the golden files pin the bytes; this
        pins the *physics* so a regenerated golden can't silently drift
        out of the paper's regime.
        """
        by_claim = {h.claim: h for h in headline_report(default_month)}
        gflops = by_claim["average daily system performance"].measured_value
        assert 0.9 <= gflops <= 1.6
        eff = by_claim["system efficiency (of aggregate peak)"].measured_value
        assert 0.02 <= eff <= 0.045
        assert by_claim["most popular node count"].measured_value == 16
        assert 1.3 <= by_claim["FPU0:FPU1 instruction ratio"].measured_value <= 2.2

    def test_json_summary(self, default_month, golden):
        golden.check("summary.json", dataset_to_json(default_month))


class TestOpsDigest:
    def test_campaign_digest(self, default_month, golden):
        golden.check("ops_digest.txt", campaign_ops_digest(default_month) + "\n")


class TestFleet:
    def test_fleet_json_block(self, golden):
        """The ``sp2-fleet run --json`` document for the demo2 preset at
        the default seed — pins the fleet routing, the per-center
        campaigns and the analysis reduction in one artifact."""
        import json

        from repro.fleet import fleet_summary, preset, run_fleet

        spec = preset("demo2")
        fleet = run_fleet(spec)
        document = {"spec": spec.to_dict(), **fleet_summary(fleet)}
        golden.check(
            "fleet_demo2.json", json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
