"""SP2 machine assembly and allocation bookkeeping."""

import pytest

from repro.cluster.machine import NAS_NODE_COUNT, SP2Machine
from repro.power2.counters import Mode


class TestAssembly:
    def test_nas_default_size(self):
        assert NAS_NODE_COUNT == 144
        assert SP2Machine().n_nodes == 144

    def test_peak_gflops(self):
        """144 × 267 Mflops ≈ 38.4 Gflops aggregate peak (the 3%
        efficiency denominator)."""
        assert SP2Machine().peak_gflops == pytest.approx(38.4, rel=0.01)

    def test_node_ids_sequential(self):
        m = SP2Machine(8)
        assert [n.node_id for n in m.nodes] == list(range(8))

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            SP2Machine(0)


class TestAllocation:
    def test_allocate_reserves_dedicated_nodes(self):
        m = SP2Machine(16)
        _, nodes = m.allocate(4)
        assert len(nodes) == 4
        assert m.n_free == 12

    def test_allocations_disjoint(self):
        m = SP2Machine(16)
        _, a = m.allocate(8)
        _, b = m.allocate(8)
        assert not set(a) & set(b)

    def test_over_allocation_raises(self):
        m = SP2Machine(4)
        m.allocate(3)
        with pytest.raises(RuntimeError):
            m.allocate(2)

    def test_release_returns_nodes(self):
        m = SP2Machine(8)
        alloc, nodes = m.allocate(5)
        released = m.release(alloc)
        assert released == nodes
        assert m.n_free == 8

    def test_double_release_raises(self):
        m = SP2Machine(8)
        alloc, _ = m.allocate(2)
        m.release(alloc)
        with pytest.raises(KeyError):
            m.release(alloc)

    def test_busy_node_ids(self):
        m = SP2Machine(8)
        _, nodes = m.allocate(3)
        assert m.busy_node_ids() == set(nodes)

    def test_zero_node_allocation_rejected(self):
        with pytest.raises(ValueError):
            SP2Machine(8).allocate(0)

    def test_allocation_nodes_lookup(self):
        m = SP2Machine(8)
        alloc, nodes = m.allocate(2)
        assert m.allocation_nodes(alloc) == nodes


class TestIdle:
    def test_idle_all_defaults_to_free_nodes(self):
        m = SP2Machine(4)
        _, busy = m.allocate(2)
        m.idle_all(100.0)
        for n in m.nodes:
            sys_fxu = n.monitor.banks[Mode.SYSTEM].read("fxu0")
            if n.node_id in busy:
                assert sys_fxu == 0
            else:
                assert sys_fxu > 0
