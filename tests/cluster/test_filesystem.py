"""NFS home filesystem model."""

import pytest

from repro.cluster.filesystem import FileServer, NFSFilesystem
from repro.cluster.switch import HighPerformanceSwitch


def fs() -> NFSFilesystem:
    return NFSFilesystem(HighPerformanceSwitch())


class TestFileServer:
    def test_allocate_within_capacity(self):
        s = FileServer("home0")
        s.allocate(4e9)
        assert s.used_bytes == 4e9

    def test_allocate_beyond_capacity_raises(self):
        s = FileServer("home0")
        with pytest.raises(OSError):
            s.allocate(9e9)

    def test_free(self):
        s = FileServer("home0")
        s.allocate(1e9)
        s.free(2e9)  # over-free clamps
        assert s.used_bytes == 0.0

    def test_negative_allocate_rejected(self):
        with pytest.raises(ValueError):
            FileServer("home0").allocate(-1.0)


class TestNFS:
    def test_three_home_filesystems(self):
        """§2: '3 home filesystems of 8 GB each'."""
        f = fs()
        assert len(f.servers) == 3
        assert all(s.capacity_bytes == 8e9 for s in f.servers)

    def test_owner_mapping_is_stable(self):
        f = fs()
        assert f.server_for(5) is f.server_for(5)

    def test_owners_spread_across_servers(self):
        f = fs()
        assert {f.server_for(u).name for u in range(6)} == {"home0", "home1", "home2"}

    def test_transfer_includes_switch_and_disk_time(self):
        f = fs()
        nbytes = 12e6
        t = f.transfer_seconds(nbytes, f.servers[0])
        switch_t = f.switch.message_seconds(nbytes)
        assert t == pytest.approx(switch_t + 1.0)  # 12 MB at 12 MB/s disk

    def test_read_write_accounting(self):
        f = fs()
        f.read(0, 1000.0)
        f.write(0, 2000.0)
        server = f.server_for(0)
        assert server.bytes_read == 1000.0
        assert server.bytes_written == 2000.0
        assert f.total_bytes_moved == 3000.0

    def test_negative_transfer_rejected(self):
        f = fs()
        with pytest.raises(ValueError):
            f.transfer_seconds(-1.0, f.servers[0])

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            NFSFilesystem(HighPerformanceSwitch(), n_servers=0)
