"""HPS fabric topology (Stunkel et al., 1995)."""

import pytest

from repro.cluster.topology import FRAME_SIZE, HPSTopology


@pytest.fixture(scope="module")
def nas() -> HPSTopology:
    """The NAS machine: 144 nodes = 9 frames."""
    return HPSTopology(144)


class TestConstruction:
    def test_frame_count(self, nas):
        assert nas.n_frames == 9

    def test_partial_frame(self):
        t = HPSTopology(20)  # one full frame + 4 nodes
        assert t.n_frames == 2
        assert t.graph.has_node(19)

    def test_every_node_attached(self, nas):
        for n in range(144):
            assert nas.graph.degree(n) == 1  # one port into the fabric

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            HPSTopology(0)

    def test_connected(self, nas):
        import networkx as nx

        assert nx.is_connected(nas.graph)


class TestRouting:
    def test_intra_frame_is_shorter_than_inter(self, nas):
        intra = nas.chip_hops(0, 5)
        inter = nas.chip_hops(0, FRAME_SIZE)
        assert intra < inter

    def test_same_chip_neighbors_two_hops(self, nas):
        # Nodes 0-3 share a node-side chip: route is node→chip→node.
        assert nas.chip_hops(0, 1) == 1

    def test_inter_frame_hop_count(self, nas):
        # node→nc→lc→(cable)→lc→nc→node = 4 chips.
        assert nas.chip_hops(0, 140) == 4

    def test_route_endpoints(self, nas):
        r = nas.route(3, 77)
        assert r.path[0] == 3 and r.path[-1] == 77

    def test_out_of_range_rejected(self, nas):
        with pytest.raises(ValueError):
            nas.route(0, 144)

    def test_hardware_latency_tiny_vs_software(self, nas):
        """§2's 45 µs is software; the wire part is well under 1 µs."""
        r = nas.route(0, 143)
        assert r.hardware_latency_seconds < 1e-6


class TestScaling:
    def test_bisection_grows_with_frames(self):
        """The structural basis of §2's 'bandwidth scales linearly'."""
        small = HPSTopology(32).bisection_width()
        large = HPSTopology(128).bisection_width()
        assert large > 2 * small

    def test_hop_count_flat_with_size(self):
        """Any pair is ≤4 chip hops regardless of machine size — why
        latency does not grow with the machine."""
        for n in (16, 64, 144):
            t = HPSTopology(n)
            assert t.chip_hops(0, n - 1) <= 4

    def test_no_hot_link_kind_under_uniform_traffic(self):
        """§2: 'little performance degradation ... under a full load'."""
        t = HPSTopology(64)
        loads = t.link_load_under_uniform_traffic()
        assert set(loads) == {"node-link", "board-link", "frame-cable"}
        assert max(loads.values()) < 6.0 * min(loads.values())

    def test_summary_renders(self, nas):
        s = nas.summary()
        assert "144 nodes" in s and "9 frames" in s
