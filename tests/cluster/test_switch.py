"""High Performance Switch cost model."""

import pytest

from repro.cluster.switch import HighPerformanceSwitch
from repro.power2.config import SP2_SWITCH, SwitchConfig


class TestPointToPoint:
    def test_zero_bytes_costs_latency(self):
        sw = HighPerformanceSwitch()
        assert sw.message_seconds(0) == pytest.approx(45e-6)

    def test_bandwidth_term(self):
        sw = HighPerformanceSwitch()
        t = sw.message_seconds(34e6)  # one second of wire time
        assert t == pytest.approx(1.0 + 45e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            HighPerformanceSwitch().message_seconds(-1)

    def test_send_accounts_traffic(self):
        sw = HighPerformanceSwitch()
        sw.send(1000.0)
        sw.send(2000.0)
        assert sw.bytes_carried == 3000.0
        assert sw.messages_carried == 2


class TestExchange:
    def test_synchronous_serializes_neighbors(self):
        sw = HighPerformanceSwitch()
        one = sw.message_seconds(1e5)
        cost = sw.exchange(1e5, 6, asynchronous=False)
        assert cost.seconds == pytest.approx(6 * one)

    def test_asynchronous_overlaps(self):
        """§6: the 40 Mflops/node code used asynchronous message
        passing — overlap must make exchanges much cheaper."""
        sw = HighPerformanceSwitch()
        sync = sw.exchange(1e5, 6, asynchronous=False).seconds
        async_ = sw.exchange(1e5, 6, asynchronous=True).seconds
        assert async_ < 0.4 * sync

    def test_exchange_counts_both_directions(self):
        sw = HighPerformanceSwitch()
        cost = sw.exchange(1000.0, 4)
        assert cost.bytes_sent == 4000.0
        assert cost.bytes_received == 4000.0
        assert cost.total_bytes == 8000.0

    def test_zero_neighbors_free(self):
        cost = HighPerformanceSwitch().exchange(1e6, 0)
        assert cost.seconds == 0.0 and cost.total_bytes == 0.0

    def test_negative_neighbors_rejected(self):
        with pytest.raises(ValueError):
            HighPerformanceSwitch().exchange(1.0, -1)

    def test_overlap_fraction_validated(self):
        with pytest.raises(ValueError):
            HighPerformanceSwitch().exchange(1.0, 2, overlap_fraction=1.5)


class TestScaling:
    def test_aggregate_bandwidth_scales_linearly(self):
        """§2: 'available communication bandwidth over this switch
        scales linearly with the number of processors'."""
        sw = HighPerformanceSwitch()
        assert sw.aggregate_bandwidth(144) == pytest.approx(144 * 34e6)

    def test_non_scaling_config(self):
        sw = HighPerformanceSwitch(SwitchConfig(per_node_scaling=False))
        assert sw.aggregate_bandwidth(144) == pytest.approx(34e6)

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            HighPerformanceSwitch().aggregate_bandwidth(-1)


class TestGlobalSync:
    def test_single_node_is_free(self):
        assert HighPerformanceSwitch().global_sync_seconds(1) == 0.0

    def test_log_scaling(self):
        sw = HighPerformanceSwitch()
        t16 = sw.global_sync_seconds(16)
        t128 = sw.global_sync_seconds(128)
        assert t128 > t16
        assert t128 == pytest.approx(SP2_SWITCH.latency_seconds * 7)
