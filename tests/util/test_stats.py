"""Statistics helpers: moving averages, summaries, weighted means."""

import numpy as np
import pytest

from repro.util.stats import RunningStats, moving_average, summary, time_weighted_mean


class TestMovingAverage:
    def test_constant_series_is_unchanged(self):
        x = np.full(20, 3.5)
        np.testing.assert_allclose(moving_average(x, 5), x)

    def test_warmup_ramp_averages_prefix(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], window=3)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.0, 3.0])

    def test_window_longer_than_series(self):
        out = moving_average([2.0, 4.0], window=10)
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_empty_series(self):
        assert moving_average([], 3).size == 0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros((3, 3)), 2)

    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(0)
        x = rng.random(100)
        w = 7
        out = moving_average(x, w)
        for i in range(len(x)):
            lo = max(0, i - w + 1)
            assert out[i] == pytest.approx(x[lo : i + 1].mean())


class TestSummary:
    def test_basic_moments(self):
        s = summary([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4]))
        assert (s.min, s.max, s.n) == (1.0, 4.0, 4)

    def test_empty_sample(self):
        s = summary([])
        assert s.n == 0 and s.mean == 0.0 and s.std == 0.0


class TestTimeWeightedMean:
    def test_equal_weights_is_plain_mean(self):
        assert time_weighted_mean([1.0, 3.0], [5.0, 5.0]) == pytest.approx(2.0)

    def test_weighting(self):
        # A long slow job dominates a short fast one (the §6 metric).
        assert time_weighted_mean([10.0, 40.0], [9.0, 1.0]) == pytest.approx(13.0)

    def test_zero_total_weight(self):
        assert time_weighted_mean([5.0], [0.0]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            time_weighted_mean([1.0, 2.0], [1.0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            time_weighted_mean([1.0], [-1.0])


class TestRunningStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        xs = rng.normal(10, 2, size=500)
        rs = RunningStats()
        for x in xs:
            rs.add(float(x))
        assert rs.mean == pytest.approx(xs.mean())
        assert rs.std == pytest.approx(xs.std(), rel=1e-9)

    def test_empty(self):
        rs = RunningStats()
        assert rs.n == 0 and rs.mean == 0.0 and rs.variance == 0.0

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(4)
        xs = rng.random(100)
        a, b, whole = RunningStats(), RunningStats(), RunningStats()
        for x in xs[:37]:
            a.add(float(x))
        for x in xs[37:]:
            b.add(float(x))
        for x in xs:
            whole.add(float(x))
        merged = a.merge(b)
        assert merged.n == whole.n
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.variance == pytest.approx(whole.variance)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.add(2.0)
        merged = a.merge(RunningStats())
        assert merged.n == 1 and merged.mean == 2.0
