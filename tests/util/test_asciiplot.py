"""ASCII figure rendering: structure, bounds, degenerate inputs."""

import numpy as np
import pytest

from repro.util.asciiplot import ascii_histogram, ascii_scatter, ascii_series


class TestSeries:
    def test_contains_title_and_axis_labels(self):
        out = ascii_series([1.0, 2.0, 3.0], title="perf")
        assert out.startswith("perf")
        assert "3" in out  # max label

    def test_empty_series(self):
        assert "empty" in ascii_series([], title="t")

    def test_constant_series_renders(self):
        out = ascii_series(np.ones(50))
        assert "*" in out

    def test_height_respected(self):
        out = ascii_series(np.arange(100, dtype=float), height=10, title="")
        # 10 plot rows + x-axis line.
        assert len(out.splitlines()) == 11

    def test_width_downsamples(self):
        out = ascii_series(np.arange(1000, dtype=float), width=40)
        # No plot line longer than the frame allows.
        assert max(len(ln) for ln in out.splitlines()) <= 40 + 13

    def test_explicit_bounds(self):
        out = ascii_series([5.0, 6.0], ymin=0.0, ymax=10.0)
        assert "10" in out and "0" in out


class TestHistogram:
    def test_bars_proportional(self):
        out = ascii_histogram(["a", "b"], [2.0, 4.0], width=10)
        lines = out.splitlines()
        a_bar = lines[0].count("#")
        b_bar = lines[1].count("#")
        assert b_bar == 10 and a_bar == 5

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_histogram(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "empty" in ascii_histogram([], [], title="t")

    def test_all_zero_counts(self):
        out = ascii_histogram(["a"], [0.0])
        assert "a" in out  # no division by zero

    def test_labels_aligned(self):
        out = ascii_histogram([1, 128], [1.0, 2.0])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestScatter:
    def test_marker_present(self):
        out = ascii_scatter([1.0, 2.0], [1.0, 4.0])
        assert "o" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_scatter([1.0], [1.0, 2.0])

    def test_empty(self):
        assert "empty" in ascii_scatter([], [], title="t")

    def test_single_point(self):
        out = ascii_scatter([3.0], [7.0])
        assert "o" in out

    def test_axis_bounds_in_output(self):
        out = ascii_scatter([0.0, 5.0], [0.0, 25.0])
        assert "25" in out
