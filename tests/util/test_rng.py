"""Deterministic random-stream management."""

import numpy as np
import pytest

from repro.util.rng import RngStreams, _stable_hash, spawn_stream


class TestStreamIdentity:
    def test_same_name_returns_same_generator(self):
        s = RngStreams(1)
        assert s.get("a") is s.get("a")

    def test_different_names_are_independent_objects(self):
        s = RngStreams(1)
        assert s.get("a") is not s.get("b")

    def test_spawn_indexing(self):
        s = RngStreams(1)
        assert s.spawn("job", 3) is s.get("job#3")
        assert s.spawn("job", 3) is not s.spawn("job", 4)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngStreams(42).get("x").random(8)
        b = RngStreams(42).get("x").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_sequence(self):
        a = RngStreams(42).get("x").random(8)
        b = RngStreams(43).get("x").random(8)
        assert not np.array_equal(a, b)

    def test_creation_order_does_not_matter(self):
        s1 = RngStreams(7)
        s1.get("first").random(100)  # consume a lot from another stream
        a = s1.get("second").random(4)

        s2 = RngStreams(7)
        b = s2.get("second").random(4)
        np.testing.assert_array_equal(a, b)

    def test_streams_do_not_alias(self):
        s = RngStreams(0)
        a = s.get("alpha").random(16)
        b = s.get("beta").random(16)
        assert not np.array_equal(a, b)


class TestStableHash:
    def test_stable_across_calls(self):
        assert _stable_hash("workload.mix") == _stable_hash("workload.mix")

    def test_distinct_names_distinct_hashes(self):
        names = [f"stream-{i}" for i in range(500)]
        hashes = {_stable_hash(n) for n in names}
        assert len(hashes) == len(names)

    def test_hash_fits_in_63_bits(self):
        for name in ("", "a", "x" * 1000):
            assert 0 <= _stable_hash(name) < 2**63


class TestNames:
    def test_names_reflect_created_streams(self):
        s = RngStreams(5)
        s.get("b")
        s.get("a")
        assert s.names() == ["a", "b"]


class TestSpawnGuards:
    """SeedSequence rejects negative spawn keys with an opaque numpy
    error deep in the stack; our guards fail early and name the value."""

    @pytest.mark.parametrize("key", [(-1,), (0, -3), (2, -1, 4)])
    def test_negative_spawn_key_entries_rejected(self, key):
        with pytest.raises(ValueError, match="non-negative"):
            RngStreams(1, spawn_key=key)

    def test_negative_shard_id_rejected(self):
        with pytest.raises(ValueError, match="shard_id must be non-negative"):
            spawn_stream(1, -1)

    def test_error_names_the_offending_value(self):
        with pytest.raises(ValueError, match="-7"):
            RngStreams(1, spawn_key=(3, -7))


class TestSpawnStream:
    def test_shard_trees_are_deterministic(self):
        a = spawn_stream(9, 2).get("x").random(8)
        b = spawn_stream(9, 2).get("x").random(8)
        np.testing.assert_array_equal(a, b)

    def test_shard_trees_are_disjoint_from_root_and_each_other(self):
        root = RngStreams(9).get("x").random(8)
        s2 = spawn_stream(9, 2).get("x").random(8)
        s3 = spawn_stream(9, 3).get("x").random(8)
        assert not np.array_equal(root, s2)
        assert not np.array_equal(s2, s3)
