"""Table construction and rendering."""

import pytest

from repro.util.tables import Table


def make_table() -> Table:
    t = Table(title="T", columns=("Rates", "Avg", "Std"))
    t.add_row("Mips", 45.7, 10.5)
    t.add_row("Mflops", 17.4, 3.8)
    return t


class TestConstruction:
    def test_add_row_checks_width(self):
        t = make_table()
        with pytest.raises(ValueError):
            t.add_row("too", "few")

    def test_column_extraction(self):
        t = make_table()
        assert t.column("Rates") == ["Mips", "Mflops"]
        assert t.column("Avg") == [45.7, 17.4]

    def test_column_skips_section_rows(self):
        t = make_table()
        t.add_section("CACHE")
        t.add_row("TLB", 0.04, 0.01)
        assert t.column("Rates") == ["Mips", "Mflops", "TLB"]

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            make_table().column("Nope")

    def test_as_dict(self):
        d = make_table().as_dict()
        assert set(d) == {"Rates", "Avg", "Std"}


class TestRendering:
    def test_render_contains_title_headers_and_cells(self):
        out = make_table().render()
        for text in ("T", "Rates", "Avg", "Std", "Mips", "45.7", "17.4"):
            assert text in out

    def test_render_aligns_columns(self):
        lines = make_table().render().splitlines()
        widths = {len(ln) for ln in lines[1:]}  # all box lines equal width
        assert len(widths) == 1

    def test_float_formatting(self):
        t = Table(title="x", columns=("a",), float_fmt="{:.1f}")
        t.add_row(3.14159)
        assert "3.1" in t.render()

    def test_int_and_str_cells(self):
        t = Table(title="x", columns=("a", "b"))
        t.add_row(16, "nodes")
        out = t.render()
        assert "16" in out and "nodes" in out
