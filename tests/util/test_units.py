"""Unit helpers: conversions and degenerate inputs."""

import pytest

from repro.util.units import (
    GIGA,
    MEGA,
    WORD_BYTES,
    bytes_per_word,
    gflops,
    mflops,
    per_second_to_mega,
)


class TestRates:
    def test_mflops_basic(self):
        assert mflops(2_000_000, 1.0) == pytest.approx(2.0)

    def test_mflops_scales_with_time(self):
        assert mflops(1_000_000, 2.0) == pytest.approx(0.5)

    def test_gflops_basic(self):
        assert gflops(3 * GIGA, 1.0) == pytest.approx(3.0)

    def test_gflops_is_thousandth_of_mflops(self):
        flops, secs = 123_456_789, 3.7
        assert gflops(flops, secs) == pytest.approx(mflops(flops, secs) / 1e3)

    def test_zero_seconds_yields_zero_not_inf(self):
        assert mflops(1e9, 0.0) == 0.0
        assert gflops(1e9, 0.0) == 0.0
        assert per_second_to_mega(1e9, 0.0) == 0.0

    def test_negative_seconds_yields_zero(self):
        assert mflops(1e9, -1.0) == 0.0

    def test_per_second_to_mega(self):
        assert per_second_to_mega(5 * MEGA, 1.0) == pytest.approx(5.0)


class TestWords:
    def test_word_is_8_bytes(self):
        assert WORD_BYTES == 8

    def test_bytes_per_word(self):
        assert bytes_per_word(4) == 32.0  # one 4-word DMA transfer
