"""Annotation layer: every rendered value carries its error bar."""

import json

import pytest

from repro.analysis.report import PAPER_CLAIMS
from repro.stats.annotate import (
    format_estimate,
    repeat_headline_block,
    repeat_summary,
    repeat_tables,
)
from repro.stats.estimators import mean_ci
from repro.stats.repeater import RepeatResult
from repro.stats.stopping import StopDecision


def fake_result() -> RepeatResult:
    """A hand-built 4-seed result with headline, table and campaign keys."""
    seeds = [0, 1, 2, 3]
    samples = {
        "campaign.daily_gflops_mean": [1.20, 1.32, 1.28, 1.24],
        "campaign.jobs_accounted": [900.0, 950.0, 930.0, 910.0],
        "headline.average daily system performance": [1.20, 1.32, 1.28, 1.24],
        "headline.machine average utilization": [0.61, 0.66, 0.63, 0.64],
        "table2.Mflops.avg": [2500.0, 2600.0, 2550.0, 2580.0],
        "table3.OPS.Mflops-All.avg": [2500.0, 2600.0, 2550.0, 2580.0],
        "table4.workload.cache_miss_ratio": [0.011, 0.012, 0.011, 0.012],
        "table4.npb_bt.cache_miss_ratio": [0.014, 0.014, 0.014, 0.014],
    }
    return RepeatResult(
        seeds=seeds,
        batch_sizes=[2, 2],
        samples=samples,
        metric_seeds={k: seeds for k in samples},
        stopped=StopDecision("rse", "RSE 0.018 <= 0.02 at n=4"),
        target_metric="campaign.daily_gflops_mean",
    )


class TestFormat:
    def test_format_estimate_shape(self):
        est = mean_ci([1.20, 1.32, 1.28, 1.24])
        text = format_estimate(est, "rse")
        assert "±" in text
        assert "[n=4, rule=rse]" in text

    def test_format_without_rule(self):
        assert "rule" not in format_estimate(mean_ci([1.0, 2.0]))


class TestHeadlineBlock:
    def test_every_line_carries_error_bar_and_n(self):
        block = repeat_headline_block(fake_result())
        assert "4 campaigns" in block and "rule=rse" in block
        for line in block.splitlines()[2:]:
            assert "±" in line and "n=4" in line, line

    def test_paper_order_preserved(self):
        block = repeat_headline_block(fake_result())
        perf = block.find("average daily system performance")
        util = block.find("machine average utilization")
        claims = list(PAPER_CLAIMS)
        assert claims.index("average daily system performance") < claims.index(
            "machine average utilization"
        )
        assert 0 < perf < util


class TestTables:
    def test_tables_render_with_ci_columns(self):
        tables = repeat_tables(fake_result())
        assert len(tables) == 4
        t2 = tables[1].render()
        assert "95% CI" in t2 and "±" in t2
        t4 = tables[3].render()
        assert "Cache Miss Ratio" in t4

    def test_missing_metric_renders_blank(self):
        # The fake result has no Mips samples: the row exists, cells blank.
        t2 = repeat_tables(fake_result())[1]
        mips_row = next(r for r in t2.rows if r and r[0] == "Mips")
        assert mips_row[1] == "" and mips_row[2] == ""


class TestSummary:
    def test_every_value_is_an_estimate_dict(self):
        payload = repeat_summary(fake_result(), config={"n_days": 30})
        assert payload["repeat"]["rule"] == "rse"
        assert payload["repeat"]["n"] == 4
        for block in ("campaign", ):
            for est in payload[block].values():
                assert set(est) == {"mean", "ci_low", "ci_high", "n", "rule"}
        for h in payload["headlines"]:
            assert set(h["measured"]) == {"mean", "ci_low", "ci_high", "n", "rule"}
            assert h["paper"] == PAPER_CLAIMS[h["claim"]][0]
        for table in ("table2", "table3", "table4"):
            for est in payload["tables"][table].values():
                assert set(est) == {"mean", "ci_low", "ci_high", "n", "rule"}

    def test_samples_ride_along(self):
        payload = repeat_summary(fake_result())
        s = payload["samples"]["campaign.daily_gflops_mean"]
        assert s["seeds"] == [0, 1, 2, 3]
        assert len(s["values"]) == 4

    def test_json_serializable(self):
        text = json.dumps(repeat_summary(fake_result()))
        assert "ci_low" in text

    def test_estimates_match_mean_ci(self):
        result = fake_result()
        payload = repeat_summary(result)
        est = mean_ci(result.samples["campaign.daily_gflops_mean"])
        got = payload["campaign"]["daily_gflops_mean"]
        assert got["mean"] == pytest.approx(est.mean)
        assert got["ci_low"] == pytest.approx(est.ci_low)
        assert got["ci_high"] == pytest.approx(est.ci_high)
