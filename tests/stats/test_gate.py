"""The CI-overlap perf gate: noise passes, real regressions fail."""

import pytest

from repro.stats.gate import ci_overlap_gate, render_gate


TIGHT_HIGH = [2.60, 2.65, 2.62, 2.63, 2.61]  # a recorded speedup baseline
TIGHT_LOW = [10.0, 10.2, 9.9, 10.1, 10.0]  # a recorded latency baseline


class TestHigherIsBetter:
    def test_equivalent_sample_passes(self):
        gate = ci_overlap_gate([2.58, 2.66, 2.61], TIGHT_HIGH)
        assert gate.passed

    def test_clear_regression_fails(self):
        gate = ci_overlap_gate([1.20, 1.22, 1.21], TIGHT_HIGH, tolerance=0.8)
        assert not gate.passed
        assert "below" not in gate.reason  # reason states the comparison
        assert gate.bound == pytest.approx(0.8 * gate.baseline.ci_low)

    def test_noisy_overlap_passes(self):
        # Wide measured CI straddling the floor: not enough evidence.
        gate = ci_overlap_gate([1.5, 3.5], TIGHT_HIGH, tolerance=0.8)
        assert gate.passed

    def test_better_mean_always_passes(self):
        gate = ci_overlap_gate([5.0, 5.01, 5.02], TIGHT_HIGH)
        assert gate.passed


class TestLowerIsBetter:
    def test_equivalent_sample_passes(self):
        gate = ci_overlap_gate(
            [10.1, 9.8, 10.3], TIGHT_LOW, higher_is_better=False, tolerance=2.0
        )
        assert gate.passed

    def test_clear_regression_fails(self):
        gate = ci_overlap_gate(
            [99.0, 101.0, 100.0], TIGHT_LOW, higher_is_better=False, tolerance=2.0
        )
        assert not gate.passed

    def test_lower_mean_always_passes(self):
        gate = ci_overlap_gate(
            [5.0, 5.1, 4.9], TIGHT_LOW, higher_is_better=False, tolerance=1.0
        )
        assert gate.passed


class TestRendering:
    def test_render_verdicts(self):
        ok = ci_overlap_gate(TIGHT_HIGH, TIGHT_HIGH)
        assert render_gate(ok, "speedup").startswith("perf gate [speedup]: PASS")
        bad = ci_overlap_gate([0.1, 0.11, 0.1], TIGHT_HIGH, tolerance=0.8)
        assert "FAIL" in render_gate(bad, "speedup")

    def test_as_dict_shape(self):
        d = ci_overlap_gate(TIGHT_HIGH, TIGHT_HIGH).as_dict()
        assert set(d) == {"passed", "reason", "measured", "baseline", "bound"}
        assert set(d["measured"]) == {"mean", "ci_low", "ci_high", "n"}

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            ci_overlap_gate(TIGHT_HIGH, TIGHT_HIGH, tolerance=0.0)
