"""Calibration: the intervals mean what they say, the loops always end.

Monte Carlo over seeded synthetic distributions with *known* true means:
a nominal 95% ``mean_ci`` must cover the truth at ≥93% empirical rate —
the slack absorbs both Monte-Carlo noise and the t-interval's mild
anti-conservatism on skewed samples.  The termination property drives
the Repeater with hypothesis-generated noise and rule configurations
and demands it halt within ``max_repeats`` on every input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.estimators import mean_ci
from repro.stats.repeater import Repeater
from repro.stats.stopping import HalfWidthRule, KSStableRule, RSERule

pytestmark = pytest.mark.calibration

TRIALS = 400
SAMPLE_N = 20


def synthetic(dist: str, rng: np.random.Generator, n: int) -> tuple[np.ndarray, float]:
    """(sample, true mean) for one Monte-Carlo trial."""
    if dist == "normal":
        return rng.normal(10.0, 2.0, n), 10.0
    if dist == "lognormal":
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)
        mu, sigma = 0.0, 0.5
        return rng.lognormal(mu, sigma, n), float(np.exp(mu + sigma**2 / 2.0))
    if dist == "bimodal":
        lobes = rng.choice([4.0, 16.0], size=n)
        return rng.normal(lobes, 1.0), 10.0
    raise ValueError(dist)


class TestCoverage:
    @pytest.mark.parametrize("dist", ["normal", "lognormal", "bimodal"])
    def test_95pct_interval_covers_true_mean(self, dist):
        rng = np.random.default_rng(20260807)
        covered = 0
        for _ in range(TRIALS):
            sample, truth = synthetic(dist, rng, SAMPLE_N)
            est = mean_ci(sample, 0.95)
            covered += est.ci_low <= truth <= est.ci_high
        rate = covered / TRIALS
        assert rate >= 0.93, f"{dist}: empirical coverage {rate:.3f} < 0.93"

    def test_coverage_scales_with_confidence(self):
        """An 80% interval must cover less often than a 99% one."""
        rng = np.random.default_rng(7)
        hits = {0.80: 0, 0.99: 0}
        for _ in range(TRIALS):
            sample, truth = synthetic("normal", rng, SAMPLE_N)
            for conf in hits:
                est = mean_ci(sample, conf)
                hits[conf] += est.ci_low <= truth <= est.ci_high
        assert hits[0.80] < hits[0.99]
        assert hits[0.99] / TRIALS >= 0.97


class TestTermination:
    """Every stopping configuration halts — structurally, not by luck."""

    @given(
        scale=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        offset=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        batch_size=st.integers(min_value=1, max_value=7),
        max_repeats=st.integers(min_value=1, max_value=25),
        target=st.floats(min_value=1e-9, max_value=10.0),
        data_seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_repeater_always_halts(
        self, scale, offset, batch_size, max_repeats, target, data_seed
    ):
        rng = np.random.default_rng(data_seed)

        def run_one(seed: int) -> dict[str, float]:
            return {"value": float(offset + scale * rng.standard_normal())}

        rules = [
            RSERule(target),
            HalfWidthRule(target),
            KSStableRule(min(max(target, 1e-3), 1.0)),
        ]
        result = Repeater(
            run_one=run_one,
            rules=rules,
            batch_size=batch_size,
            max_repeats=max_repeats,
        ).run()
        assert 1 <= result.n <= max_repeats
        assert result.stopped.rule in ("rse", "ci-halfwidth", "ks-stable", "max-repeats")

    @given(
        values=st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fixed_seed_campaigns_always_run_everything(self, values):
        def run_one(seed: int) -> dict[str, float]:
            return {"value": values[seed]}

        result = Repeater(run_one=run_one, batch_size=3).run(
            seeds=list(range(len(values)))
        )
        assert result.n == len(values)
        assert result.stopped.rule == "fixed-seeds"
