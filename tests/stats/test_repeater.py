"""The adaptive campaign driver, exercised with a fake measurement."""

import pytest

from repro.stats.repeater import Repeater
from repro.stats.stopping import RSERule


def noisy(seed: int) -> dict[str, float]:
    """Deterministic fake repeat: tight 'value', plus a flaky extra
    metric that only some seeds produce (a quiet-seed table cell)."""
    out = {"value": 10.0 + 0.01 * (seed % 3), "seed_echo": float(seed)}
    if seed % 2 == 0:
        out["sometimes"] = float(seed) * 2.0
    return out


class TestAdaptive:
    def test_converges_before_cutoff(self):
        r = Repeater(run_one=noisy, rules=[RSERule(0.01)], batch_size=4, max_repeats=40)
        result = r.run()
        assert result.stopped.rule == "rse"
        assert result.n < 40
        assert result.seeds == list(range(result.n))
        assert result.batch_sizes == [4] * (result.n // 4)

    def test_cutoff_always_fires(self):
        wild = lambda seed: {"value": float(2**seed)}  # noqa: E731 - never converges
        r = Repeater(run_one=wild, rules=[RSERule(1e-9)], batch_size=4, max_repeats=10)
        result = r.run()
        assert result.stopped.rule == "max-repeats"
        assert result.n == 10
        # The last batch is clipped to the cutoff, not overrun.
        assert result.batch_sizes == [4, 4, 2]

    def test_no_rules_runs_to_cutoff(self):
        result = Repeater(run_one=noisy, batch_size=3, max_repeats=7).run()
        assert result.stopped.rule == "max-repeats"
        assert result.n == 7

    def test_partial_metrics_record_their_seeds(self):
        result = Repeater(run_one=noisy, batch_size=4, max_repeats=8).run()
        assert result.metric_seeds["value"] == result.seeds
        assert result.metric_seeds["sometimes"] == [0, 2, 4, 6]
        assert result.sample("sometimes") == [0.0, 4.0, 8.0, 12.0]

    def test_seed0_offsets_the_stream(self):
        result = Repeater(run_one=noisy, batch_size=2, max_repeats=4).run(seed0=100)
        assert result.seeds == [100, 101, 102, 103]

    def test_missing_target_metric_raises(self):
        r = Repeater(run_one=lambda s: {"other": 1.0}, max_repeats=4)
        with pytest.raises(KeyError, match="value"):
            r.run()

    def test_on_batch_narration(self):
        seen = []
        r = Repeater(
            run_one=noisy,
            batch_size=3,
            max_repeats=6,
            on_batch=lambda n, est: seen.append((n, est.n)),
        )
        r.run()
        assert seen == [(3, 3), (6, 6)]


class TestFixedSeeds:
    def test_runs_every_seed_no_adaptivity(self):
        r = Repeater(run_one=noisy, rules=[RSERule(10.0)], batch_size=2, max_repeats=3)
        # The rule would fire instantly and max_repeats is tiny; a fixed
        # list overrides both.
        result = r.run(seeds=[5, 1, 8, 2, 9])
        assert result.stopped.rule == "fixed-seeds"
        assert result.seeds == [5, 1, 8, 2, 9]
        assert result.sample("seed_echo") == [5.0, 1.0, 8.0, 2.0, 9.0]

    def test_batch_size_partitions_but_does_not_change_results(self):
        a = Repeater(run_one=noisy, batch_size=2).run(seeds=[0, 1, 2, 3, 4])
        b = Repeater(run_one=noisy, batch_size=5).run(seeds=[0, 1, 2, 3, 4])
        assert a.samples == b.samples
        assert a.metric_seeds == b.metric_seeds
        assert a.batch_sizes == [2, 2, 1]
        assert b.batch_sizes == [5]

    def test_rejects_empty_and_duplicate_lists(self):
        r = Repeater(run_one=noisy)
        with pytest.raises(ValueError):
            r.run(seeds=[])
        with pytest.raises(ValueError):
            r.run(seeds=[1, 2, 1])


class TestBatchRunner:
    def test_batch_runner_is_used(self):
        calls = []

        def runner(seeds):
            calls.append(list(seeds))
            return [noisy(s) for s in seeds]

        result = Repeater(
            run_one=noisy, batch_size=3, max_repeats=6, batch_runner=runner
        ).run()
        assert calls == [[0, 1, 2], [3, 4, 5]]
        assert result.n == 6

    def test_short_batch_runner_rejected(self):
        r = Repeater(run_one=noisy, batch_runner=lambda seeds: [], max_repeats=2)
        with pytest.raises(RuntimeError, match="batch runner"):
            r.run()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Repeater(run_one=noisy, max_repeats=0)
        with pytest.raises(ValueError):
            Repeater(run_one=noisy, batch_size=0)


class TestResultAccessors:
    def test_estimate_and_trace(self):
        result = Repeater(run_one=noisy, batch_size=4, max_repeats=8).run()
        est = result.estimate("value")
        assert est.n == 8
        assert est.ci_low <= est.mean <= est.ci_high
        assert result.convergence_trace() == [4, 8]
        assert "value" in result.metrics()

    def test_shape_defaults_to_target(self):
        result = Repeater(run_one=noisy, batch_size=8, max_repeats=16).run()
        assert result.shape().label in ("unimodal", "multimodal")
