"""``sp2-study repeat`` determinism: workers and batch size are
execution detail, never part of the result.

A fixed seed list defines the experiment completely — every seed runs,
no adaptive decision happens mid-stream — so the summary JSON must be
byte-identical whatever worker count executed the batches, and the
measured samples identical under any batch partition (batch boundaries
are recorded as execution metadata, which is the only field allowed to
differ)."""

import json

import pytest

from repro.stats.cli import repeat_main

#: Tiny campaigns: 3 seeds x 2 days x 16 nodes keep the test under a
#: few seconds while still producing real jobs.
ARGS = [
    "--days", "2", "--nodes", "16", "--users", "6", "--seeds", "0,1,2",
]


def run_repeat(tmp_path, name, extra):
    out = tmp_path / f"{name}.json"
    rc = repeat_main([*ARGS, *extra, "--json", str(out)])
    assert rc == 0
    return out.read_bytes()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("repeat-ref")
    return run_repeat(tmp, "ref", ["--workers", "1", "--batch", "2"])


class TestWorkerInvariance:
    def test_workers_4_is_byte_identical(self, tmp_path, reference):
        parallel = run_repeat(tmp_path, "w4", ["--workers", "4", "--batch", "2"])
        assert parallel == reference


class TestBatchInvariance:
    def test_batch_size_only_moves_execution_metadata(self, tmp_path, reference):
        ref = json.loads(reference)
        one_batch = json.loads(run_repeat(tmp_path, "b3", ["--workers", "1", "--batch", "3"]))
        assert ref["repeat"].pop("batch_sizes") == [2, 1]
        assert one_batch["repeat"].pop("batch_sizes") == [3]
        assert one_batch == ref

    def test_oversized_batch_matches_too(self, tmp_path, reference):
        ref = json.loads(reference)
        big = json.loads(run_repeat(tmp_path, "b8", ["--workers", "1", "--batch", "8"]))
        ref["repeat"].pop("batch_sizes")
        big["repeat"].pop("batch_sizes")
        assert big == ref


class TestFixedSeedSemantics:
    def test_seed_list_is_the_experiment(self, reference):
        payload = json.loads(reference)
        assert payload["repeat"]["rule"] == "fixed-seeds"
        assert payload["repeat"]["seeds"] == [0, 1, 2]
        assert payload["repeat"]["n"] == 3
        for est in payload["campaign"].values():
            assert est["n"] == 3
