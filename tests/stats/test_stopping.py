"""Stopping rules fire exactly when their statistic converges."""

import pytest

from repro.stats.stopping import (
    HalfWidthRule,
    KSStableRule,
    MaxRepeatsRule,
    RSERule,
    SampleHistory,
)


def history(*batches):
    h = SampleHistory()
    for b in batches:
        h.extend(list(b))
    return h


class TestSampleHistory:
    def test_accumulates_in_order(self):
        h = history([1.0, 2.0], [3.0])
        assert h.values == [1.0, 2.0, 3.0]
        assert h.n == 3
        assert len(h.batches) == 2

    def test_empty_batches_dropped(self):
        h = history([], [1.0])
        assert len(h.batches) == 1


class TestRSERule:
    def test_fires_on_tight_sample(self):
        rule = RSERule(0.05)
        decision = rule.check(history([10.0, 10.01, 9.99, 10.0]))
        assert decision is not None and decision.rule == "rse"
        assert "RSE" in decision.detail

    def test_holds_on_noisy_sample(self):
        assert RSERule(0.01).check(history([1.0, 5.0, 9.0])) is None

    def test_min_n_gate(self):
        # Two identical values have RSE 0 but n < min_n: keep sampling.
        assert RSERule(0.05).check(history([10.0, 10.0])) is None

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            RSERule(0.0)


class TestHalfWidthRule:
    def test_relative_fires(self):
        decision = HalfWidthRule(0.05).check(history([10.0, 10.05, 9.95, 10.0]))
        assert decision is not None and decision.rule == "ci-halfwidth"

    def test_absolute_mode(self):
        h = history([10.0, 10.05, 9.95, 10.0])
        assert HalfWidthRule(0.5, relative=False).check(h) is not None
        assert HalfWidthRule(1e-6, relative=False).check(h) is None

    def test_describe_names_mode(self):
        assert "relative" in HalfWidthRule(0.1).describe()
        assert "absolute" in HalfWidthRule(0.1, relative=False).describe()


class TestKSStableRule:
    def test_fires_when_batch_matches_prior(self):
        base = [1.0, 2.0, 3.0, 4.0, 5.0]
        decision = KSStableRule(0.3).check(history(base, base))
        assert decision is not None and decision.rule == "ks-stable"

    def test_holds_when_batch_shifts(self):
        rule = KSStableRule(0.3)
        shifted = history([1.0, 2.0, 3.0, 4.0, 5.0], [11.0, 12.0, 13.0, 14.0, 15.0])
        assert rule.check(shifted) is None

    def test_needs_two_batches_and_min_side(self):
        rule = KSStableRule(0.9)
        assert rule.check(history([1.0, 2.0, 3.0, 4.0, 5.0])) is None
        assert rule.check(history([1.0, 2.0], [1.0, 2.0])) is None

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            KSStableRule(0.0)
        with pytest.raises(ValueError):
            KSStableRule(1.5)


class TestMaxRepeatsRule:
    def test_fires_at_limit(self):
        rule = MaxRepeatsRule(3)
        assert rule.check(history([1.0, 2.0])) is None
        decision = rule.check(history([1.0, 2.0], [3.0]))
        assert decision is not None and decision.rule == "max-repeats"

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            MaxRepeatsRule(0)
