"""Estimator primitives: t quantiles, CIs, KS, the shape classifier."""

import math

import numpy as np
import pytest

from repro.stats.estimators import (
    bootstrap_ci,
    classify_distribution,
    ks_statistic,
    mean_ci,
    quantile_ci,
    relative_standard_error,
    t_cdf,
    t_ppf,
)


class TestStudentT:
    @pytest.mark.parametrize(
        "p,df,expected",
        [
            # Textbook t-table values (two-sided 95% unless noted).
            (0.975, 1, 12.7062),
            (0.975, 2, 4.3027),
            (0.975, 5, 2.5706),
            (0.975, 10, 2.2281),
            (0.975, 30, 2.0423),
            (0.95, 5, 2.0150),
            (0.995, 100, 2.6259),
        ],
    )
    def test_ppf_matches_t_tables(self, p, df, expected):
        assert t_ppf(p, df) == pytest.approx(expected, abs=5e-4)

    def test_ppf_symmetry(self):
        assert t_ppf(0.25, 7) == pytest.approx(-t_ppf(0.75, 7))
        assert t_ppf(0.5, 3) == 0.0

    def test_cdf_inverts_ppf(self):
        for p in (0.6, 0.9, 0.975, 0.999):
            for df in (1, 4, 29):
                assert t_cdf(t_ppf(p, df), df) == pytest.approx(p, abs=1e-9)

    def test_large_df_approaches_normal(self):
        # z_{0.975} = 1.95996...; t with 1e6 dof is the same to 4 places.
        assert t_ppf(0.975, 1_000_000) == pytest.approx(1.9600, abs=1e-3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            t_ppf(0.0, 5)
        with pytest.raises(ValueError):
            t_ppf(1.0, 5)
        with pytest.raises(ValueError):
            t_ppf(0.9, 0)
        with pytest.raises(ValueError):
            t_cdf(1.0, -2)


class TestMeanCI:
    def test_known_interval(self):
        # n=4, mean 2.5, s=sqrt(5/3); hw = t(0.975,3)*s/2 = 2.0555...
        est = mean_ci([1.0, 2.0, 3.0, 4.0])
        s = math.sqrt(5.0 / 3.0)
        hw = 3.1824 * s / 2.0
        assert est.mean == pytest.approx(2.5)
        assert est.halfwidth == pytest.approx(hw, abs=1e-3)
        assert est.ci_low == pytest.approx(2.5 - hw, abs=1e-3)
        assert est.n == 4

    def test_single_observation_degenerates(self):
        est = mean_ci([3.7])
        assert (est.mean, est.ci_low, est.ci_high) == (3.7, 3.7, 3.7)
        assert est.rse == float("inf")  # one repeat never reads converged

    def test_order_independent(self):
        a = mean_ci([5.0, 1.0, 3.0, 2.0])
        b = mean_ci([1.0, 2.0, 3.0, 5.0])
        assert a == b

    def test_wider_confidence_is_wider(self):
        x = [1.0, 2.0, 4.0, 8.0, 9.0]
        assert mean_ci(x, 0.99).halfwidth > mean_ci(x, 0.95).halfwidth

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.0)


class TestBootstrap:
    def test_deterministic_for_seed(self):
        x = np.random.default_rng(3).normal(10.0, 2.0, 40)
        assert bootstrap_ci(x, seed=17) == bootstrap_ci(x, seed=17)

    def test_different_seeds_differ(self):
        x = np.random.default_rng(3).normal(10.0, 2.0, 40)
        assert bootstrap_ci(x, seed=1) != bootstrap_ci(x, seed=2)

    def test_interval_brackets_the_mean_statistic(self):
        x = np.random.default_rng(0).normal(5.0, 1.0, 100)
        est = bootstrap_ci(x)
        assert est.ci_low <= est.mean <= est.ci_high

    def test_quantile_ci_brackets_quantile(self):
        x = np.random.default_rng(1).exponential(2.0, 200)
        est = quantile_ci(x, 0.9)
        assert est.ci_low <= float(np.quantile(x, 0.9)) <= est.ci_high
        with pytest.raises(ValueError):
            quantile_ci(x, 1.5)


class TestRSE:
    def test_known_value(self):
        # mean 2, s=1, n=4 -> (1/2)/2 = 0.25
        assert relative_standard_error([1.0, 1.0, 3.0, 3.0]) == pytest.approx(
            math.sqrt(4.0 / 3.0) / 2.0 / 2.0
        )

    def test_undefined_cases(self):
        assert relative_standard_error([5.0]) == float("inf")
        assert relative_standard_error([-1.0, 1.0]) == float("inf")  # mean 0
        assert relative_standard_error([0.0, 0.0, 0.0]) == 0.0


class TestKS:
    def test_identical_samples_are_zero(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert ks_statistic(x, x) == 0.0

    def test_disjoint_samples_are_one(self):
        assert ks_statistic([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_known_half(self):
        # {1,2} vs {2,3}: sup|F_a - F_b| = 1/2 at x in [1,2).
        assert ks_statistic([1.0, 2.0], [2.0, 3.0]) == pytest.approx(0.5)

    def test_symmetry_and_empty(self):
        a, b = [1.0, 5.0, 9.0], [2.0, 3.0]
        assert ks_statistic(a, b) == ks_statistic(b, a)
        with pytest.raises(ValueError):
            ks_statistic([], b)


class TestClassifier:
    def test_normal_reads_unimodal(self):
        x = np.random.default_rng(0).normal(10.0, 1.0, 60)
        shape = classify_distribution(x)
        assert shape.label == "unimodal"
        assert shape.modes == 1
        assert shape.split is None

    def test_separated_lobes_read_multimodal(self):
        rng = np.random.default_rng(1)
        x = np.concatenate(
            [rng.normal(0.0, 0.3, 30), rng.normal(10.0, 0.3, 30)]
        )
        shape = classify_distribution(x)
        assert shape.label == "multimodal"
        assert shape.modes == 2
        assert 2.0 < shape.split < 8.0
        assert shape.aic_gain > 0.0

    def test_small_sample_is_insufficient(self):
        shape = classify_distribution([1.0, 2.0, 3.0])
        assert shape.label == "insufficient"

    def test_mildly_skewed_tail_stays_unimodal(self):
        # Gentle lognormal skew is one lobe; the hard-split AIC only
        # flips to multimodal once the tail detaches into its own mass.
        x = np.random.default_rng(0).lognormal(0.0, 0.2, 80)
        assert classify_distribution(x).label == "unimodal"
