"""Daily operations reports."""

import pytest

from repro.analysis.opsreport import campaign_ops_digest, day_ops, render_day_report


class TestDayOps:
    def test_basic_fields(self, month_dataset):
        ops = day_ops(month_dataset, 5)
        assert ops.day == 5
        assert ops.gflops >= 0
        assert 0 <= ops.utilization <= 1
        assert ops.jobs_finished >= 0

    def test_gflops_matches_daily_series(self, month_dataset):
        daily = month_dataset.daily_gflops()
        for day in (0, 10, 29):
            assert day_ops(month_dataset, day).gflops == pytest.approx(daily[day])

    def test_out_of_range_day(self, month_dataset):
        with pytest.raises(IndexError):
            day_ops(month_dataset, 300)

    def test_top_jobs_sorted(self, month_dataset):
        for day in range(10):
            ops = day_ops(month_dataset, day)
            rates = [r.total_mflops for r in ops.top_jobs]
            assert rates == sorted(rates, reverse=True)

    def test_suspects_have_high_ratio(self, month_dataset):
        found = 0
        for day in range(month_dataset.config.n_days):
            ops = day_ops(month_dataset, day)
            for rec in ops.paging_suspects:
                assert rec.system_user_fxu_ratio > 0.5
                found += 1
        assert found > 0  # a month of NAS load has paging suspects

    def test_jobs_counted_on_end_day(self, month_dataset):
        total = sum(
            day_ops(month_dataset, d).jobs_finished
            for d in range(month_dataset.config.n_days)
        )
        in_horizon = [
            r
            for r in month_dataset.accounting.records
            if r.end_time < month_dataset.config.n_days * 86400
        ]
        assert total == len(in_horizon)


class TestRendering:
    def test_day_report_mentions_key_lines(self, month_dataset):
        text = render_day_report(day_ops(month_dataset, 3))
        for needle in ("operations report", "performance", "workload", "memory", "i/o"):
            assert needle in text

    def test_suspects_section(self, month_dataset):
        texts = [
            render_day_report(day_ops(month_dataset, d))
            for d in range(month_dataset.config.n_days)
        ]
        assert any("PAGING SUSPECTS" in t for t in texts)
        assert any("no suspects" in t for t in texts)

    def test_digest_one_line_per_day(self, month_dataset):
        digest = campaign_ops_digest(month_dataset)
        assert len(digest.splitlines()) == month_dataset.config.n_days
