"""Trend analysis module."""

import numpy as np
import pytest

from repro.analysis.trends import TrendLine, render_trend_report, trend_report
from repro.core.study import run_study


class TestTrendLine:
    def test_obvious_trend_threshold(self):
        assert TrendLine("x", 0.6, +1).is_obvious_trend
        assert TrendLine("x", -0.55, -1).is_obvious_trend
        assert not TrendLine("x", 0.3, +1).is_obvious_trend

    def test_line_rendering(self):
        line = TrendLine("fma flop fraction", 0.21, +1).line()
        assert "expected +" in line and "+0.21" in line and "no obvious trend" in line


class TestTrendReport:
    def test_all_candidates_present(self, month_dataset):
        trends = trend_report(month_dataset)
        names = {t.predictor for t in trends}
        assert {
            "fma flop fraction",
            "cache miss ratio",
            "TLB miss ratio",
            "flops per memory instruction",
            "FPU0:FPU1 ratio",
            "system/user FXU ratio",
            "user cycle fraction",
        } == names

    def test_correlations_bounded(self, month_dataset):
        for t in trend_report(month_dataset):
            assert -1.0 <= t.correlation <= 1.0

    def test_no_strong_cpu_side_predictor(self, month_dataset):
        """§5's finding, tested loosely on one month (app-mix drift makes
        short-campaign correlations noisy; the benchmark harness asserts
        the strict version on the 60/270-day campaign): no CPU-side
        predictor explains daily performance strongly."""
        by = {t.predictor: t for t in trend_report(month_dataset)}
        for name in ("fma flop fraction", "cache miss ratio", "TLB miss ratio"):
            assert abs(by[name].correlation) < 0.75, name

    def test_too_few_days_rejected(self):
        tiny = run_study(seed=2, n_days=1, n_nodes=16, n_users=4)
        with pytest.raises(ValueError, match="five active days"):
            trend_report(tiny)

    def test_render(self, month_dataset):
        text = render_trend_report(trend_report(month_dataset))
        assert "trend search" in text
        assert "22-counter" in text


class TestUserHistories:
    def test_histories_cover_active_users(self, month_dataset):
        from repro.analysis.trends import user_histories

        hist = user_histories(month_dataset)
        assert len(hist) >= 5  # a month of 60 users has regulars
        for h in hist:
            assert h.n_jobs >= 8
            assert h.mean_mflops_per_node > 0

    def test_no_user_improves_systematically(self, month_dataset):
        """§6's premise, per user: the population median improvement is
        ~zero (users keep resubmitting the same codes)."""
        import numpy as np

        from repro.analysis.trends import user_histories

        slopes = [h.improvement_per_job for h in user_histories(month_dataset)]
        assert abs(float(np.median(slopes))) < 0.05

    def test_min_jobs_filter(self, month_dataset):
        from repro.analysis.trends import user_histories

        few = user_histories(month_dataset, min_jobs=50)
        many = user_histories(month_dataset, min_jobs=2)
        assert len(few) <= len(many)
