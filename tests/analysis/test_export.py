"""Machine-readable exports."""

import json


from repro.analysis.export import (
    dataset_summary,
    dataset_to_json,
    export_all_figures,
    table_to_csv,
)
from repro.analysis.tables import table1, table3
from repro.util.tables import Table


class TestTableCsv:
    def test_header_and_rows(self):
        t = Table(title="x", columns=("a", "b"))
        t.add_row("r1", 1.5)
        csv = table_to_csv(t)
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "r1,1.5"

    def test_sections_become_comments(self, month_dataset):
        csv = table_to_csv(table3(month_dataset))
        assert any(line.startswith("# OPS") for line in csv.splitlines())

    def test_quoting(self):
        t = Table(title="x", columns=("a",))
        t.add_row('with,comma "quoted"')
        csv = table_to_csv(t)
        assert '"with,comma ""quoted"""' in csv

    def test_table1_roundtrips_column_count(self):
        csv = table_to_csv(table1())
        rows = [l for l in csv.splitlines() if not l.startswith("#")]
        assert all(len(r.split(",")) >= 3 for r in rows[:5])


class TestDatasetSummary:
    def test_structure(self, small_dataset):
        s = dataset_summary(small_dataset)
        assert set(s) == {"config", "campaign", "telemetry", "headlines"}
        assert s["config"]["n_days"] == small_dataset.config.n_days
        assert s["campaign"]["jobs_accounted"] == len(small_dataset.accounting)
        assert s["campaign"]["daily_gflops_mean"] > 0

    def test_headlines_complete(self, small_dataset):
        s = dataset_summary(small_dataset)
        claims = {h["claim"] for h in s["headlines"]}
        assert "average daily system performance" in claims
        for h in s["headlines"]:
            assert {"claim", "paper", "measured", "unit", "ratio"} <= set(h)

    def test_json_parses(self, small_dataset):
        parsed = json.loads(dataset_to_json(small_dataset))
        assert parsed["config"]["n_nodes"] == small_dataset.config.n_nodes

    def test_run_attributable_from_artifact_alone(self, small_dataset):
        """Seed + event count identify the run without the command line."""
        s = dataset_summary(small_dataset)
        assert s["campaign"]["seed"] == small_dataset.config.seed
        assert s["campaign"]["events_processed"] == small_dataset.events_processed
        assert s["campaign"]["events_processed"] > 0


class TestFigureExport:
    def test_all_five_figures(self, small_dataset):
        out = export_all_figures(small_dataset)
        assert set(out) == {f"figure{i}" for i in range(1, 6)}
        for text in out.values():
            assert text.count("\n") >= 1  # header + at least one row
