"""Tables 1-4 generators."""

import pytest

from repro.analysis.tables import BUSY_DAY_GFLOPS, busy_days, table1, table2, table3, table4
from repro.core.study import run_study


class TestTable1:
    def test_22_counter_rows(self):
        t = table1()
        assert len(t.rows) == 22

    def test_paper_labels_present(self):
        counters = table1().column("Counter")
        for label in ("user.fxu0", "user.dcache_mis", "fpop.fp_muladd", "user.dma_write"):
            assert label in counters

    def test_renders(self):
        out = table1().render()
        assert "FXU[4]" in out and "SCU[0]" in out


class TestBusyDayFilter:
    def test_filter_threshold(self, month_dataset):
        idx, rates = busy_days(month_dataset)
        assert len(idx) == len(rates)
        for r in rates:
            assert r.gflops_system() > BUSY_DAY_GFLOPS

    def test_some_days_pass_on_month_campaign(self, month_dataset):
        idx, _ = busy_days(month_dataset)
        assert len(idx) >= 3


class TestTable2:
    def test_rows_and_columns(self, month_dataset):
        t = table2(month_dataset)
        assert list(t.columns) == ["Rates", "Day 45.0", "Avg Rate", "Std"]
        assert t.column("Rates") == ["Mips", "Mops", "Mflops"]

    def test_rates_in_paper_band(self, month_dataset):
        """Table 2: Mips 45.7±10.5, Mops 48.3±10.2, Mflops 17.4±3.8."""
        t = month_dataset and table2(month_dataset)
        avg = {row[0]: row[2] for row in t.rows}
        assert 30.0 <= avg["Mips"] <= 60.0
        assert 35.0 <= avg["Mops"] <= 65.0
        assert 12.0 <= avg["Mflops"] <= 24.0

    def test_mops_exceeds_mips(self, month_dataset):
        t = table2(month_dataset)
        avg = {row[0]: row[2] for row in t.rows}
        assert avg["Mops"] > avg["Mips"]

    def test_raises_without_busy_days(self):
        tiny = run_study(seed=99, n_days=1, n_nodes=4, n_users=2)
        with pytest.raises(ValueError):
            table2(tiny)


class TestTable3:
    def test_sections_present(self, month_dataset):
        out = table3(month_dataset).render()
        for section in ("OPS", "INST", "CACHE", "I/O"):
            assert section in out

    def test_flop_rows_sum(self, month_dataset):
        t = table3(month_dataset)
        avg = {row[0]: row[2] for row in t.rows if not str(row[0]).startswith("--")}
        total = avg["Mflops-add"] + avg["Mflops-div"] + avg["Mflops-mult"] + avg["Mflops-fma"]
        assert total == pytest.approx(avg["Mflops-All"], rel=1e-6)

    def test_divide_row_is_zero(self, month_dataset):
        """§3: the broken divide counter ⇒ Mflops-div = 0."""
        t = table3(month_dataset)
        avg = {row[0]: row[2] for row in t.rows if not str(row[0]).startswith("--")}
        assert avg["Mflops-div"] == 0.0

    def test_fpu0_exceeds_fpu1(self, month_dataset):
        t = table3(month_dataset)
        avg = {row[0]: row[2] for row in t.rows if not str(row[0]).startswith("--")}
        assert avg["Mips-Floating Point (Unit 0)"] > avg["Mips-Floating Point (Unit 1)"]

    def test_cache_rates_in_band(self, month_dataset):
        """Table 3: dcache 0.30 M/s, TLB 0.04 M/s per node."""
        t = table3(month_dataset)
        avg = {row[0]: row[2] for row in t.rows if not str(row[0]).startswith("--")}
        assert 0.1 <= avg["Data Cache Misses-Million/S"] <= 0.6
        assert 0.005 <= avg["TLB-Million/S"] <= 0.12


class TestTable4:
    def test_columns(self, month_dataset):
        t = table4(month_dataset)
        assert "NAS Workload" in t.columns
        assert "Sequential Access" in t.columns
        assert "NPB BT on 49 CPUs" in t.columns

    def test_sequential_column_is_analytic(self, month_dataset):
        t = table4(month_dataset)
        cache_row = t.rows[0]
        assert cache_row[2] == "3.1%"  # 8/256

    def test_bt_mflops_near_44(self, month_dataset):
        t = table4(month_dataset)
        bt_mflops = t.rows[2][3]
        assert 38.0 <= bt_mflops <= 50.0

    def test_ordering_matches_paper(self, month_dataset):
        """Sequential access misses more than the workload; BT's TLB
        ratio is the best of the three."""
        t = table4(month_dataset)
        wl_tlb = float(t.rows[1][1].rstrip("%"))
        seq_tlb = float(t.rows[1][2].rstrip("%"))
        bt_tlb = float(t.rows[1][3].rstrip("%"))
        assert bt_tlb < wl_tlb
        assert bt_tlb < seq_tlb
