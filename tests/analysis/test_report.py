"""Headline report: structure and calibration bands."""

import pytest

from repro.analysis.report import (
    PAPER_CLAIMS,
    Headline,
    headline_report,
    paper_comparison,
)


class TestHeadline:
    def test_ratio(self):
        h = Headline("x", 2.0, 3.0, "Gflops")
        assert h.ratio == pytest.approx(1.5)

    def test_zero_paper_value(self):
        assert Headline("x", 0.0, 0.0, "u").ratio == 1.0
        assert Headline("x", 0.0, 1.0, "u").ratio == float("inf")

    def test_line_format(self):
        line = Headline("average rate", 1.3, 1.6, "Gflops").line()
        assert "paper" in line and "measured" in line and "x1.23" in line


class TestReport:
    def test_all_headlines_present(self, month_dataset):
        claims = {h.claim for h in headline_report(month_dataset)}
        for needle in (
            "average daily system performance",
            "maximum 15-minute rate",
            "fma fraction of workload flops",
            "FPU0:FPU1 instruction ratio",
            "most popular node count",
        ):
            assert any(needle in c for c in claims), needle

    def test_headlines_within_reproduction_band(self, month_dataset):
        """Every headline within 3x of the paper — the 'shape holds'
        criterion; most land within ±30%."""
        report = headline_report(month_dataset)
        for h in report:
            assert 1 / 3 <= h.ratio <= 3.0, h.claim
        close = sum(1 for h in report if 0.7 <= h.ratio <= 1.4)
        assert close >= len(report) // 2

    def test_efficiency_is_single_digit_percent(self, month_dataset):
        h = next(
            h for h in headline_report(month_dataset) if "efficiency" in h.claim
        )
        assert 0.01 <= h.measured_value <= 0.09

    def test_paper_comparison_renders(self, month_dataset):
        text = paper_comparison(month_dataset)
        assert "Paper vs measured" in text
        assert "Gflops" in text


class TestPaperClaims:
    """PAPER_CLAIMS is the static mirror of headline_report — the repeat
    layer annotates against it, so the two must never drift apart."""

    def test_claims_match_headline_report_exactly(self, month_dataset):
        report = headline_report(month_dataset)
        assert [h.claim for h in report] == list(PAPER_CLAIMS)
        for h in report:
            paper, unit = PAPER_CLAIMS[h.claim]
            assert h.paper_value == paper, h.claim
            assert h.unit == unit, h.claim
