"""Sensitivity harness plumbing (the sweeps themselves run in
benchmarks/bench_sensitivity.py — they are campaign-sized)."""


import pytest

from repro.analysis.sensitivity import (
    KNOBS,
    SweepPoint,
    _config_for,
    render_sweep,
    sweep,
)
from repro.core.study import StudyConfig
from repro.power2.config import MachineConfig


class TestConfigFor:
    def test_demand_mean(self):
        cfg = _config_for("demand_mean", 0.5, StudyConfig())
        assert cfg.demand_mean == 0.5

    def test_memory_bytes(self):
        cfg = _config_for("memory_bytes", 256 * 1024 * 1024, StudyConfig())
        assert cfg.machine_config.memory_bytes == 256 * 1024 * 1024

    def test_paging_fault_limit(self):
        cfg = _config_for("paging_fault_limit", 40.0, StudyConfig())
        assert cfg.machine_config.paging_fault_limit == 40.0

    def test_preserves_existing_machine_config(self):
        base = StudyConfig(machine_config=MachineConfig(clock_hz=133.4e6))
        cfg = _config_for("paging_fault_limit", 40.0, base)
        assert cfg.machine_config.clock_hz == 133.4e6

    def test_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown knob"):
            _config_for("warp_factor", 9.0, StudyConfig())

    def test_knob_registry(self):
        assert set(KNOBS) == {"demand_mean", "memory_bytes", "paging_fault_limit"}


class TestSweep:
    def test_tiny_sweep_runs(self):
        points = sweep("demand_mean", [0.3], n_days=1, n_nodes=16, n_users=4)
        assert len(points) == 1
        assert points[0].value == 0.3
        assert points[0].daily_gflops_mean >= 0

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep("demand_mean", [])


class TestRender:
    def test_render_includes_all_points(self):
        pts = [
            SweepPoint(0.1, 1.0, 0.3, 18.0, 5.0),
            SweepPoint(0.2, 2.0, 0.6, 19.0, float("nan")),
        ]
        text = render_sweep("demand_mean", pts)
        assert "demand_mean" in text
        assert text.count("\n") == 3
        assert "(—)" in text  # NaN wide-job column rendered gracefully
