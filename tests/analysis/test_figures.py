"""Figures 1-5: series structure and the paper's shapes."""

import numpy as np

from repro.analysis.figures import figure1, figure2, figure3, figure4, figure5


class TestFigure1:
    def test_series_present(self, month_dataset):
        f = figure1(month_dataset)
        assert set(f.series) == {
            "daily_gflops",
            "daily_gflops_moving_avg",
            "utilization_moving_avg",
        }
        assert len(f.series["daily_gflops"]) == month_dataset.config.n_days

    def test_moving_average_smoother_than_daily(self, month_dataset):
        f = figure1(month_dataset)
        assert np.std(np.diff(f.series["daily_gflops_moving_avg"])) < np.std(
            np.diff(f.series["daily_gflops"])
        )

    def test_renders_and_csv(self, month_dataset):
        f = figure1(month_dataset)
        assert "Performance History" in f.render()
        csv = f.csv()
        assert csv.splitlines()[0] == "daily_gflops,daily_gflops_moving_avg,utilization_moving_avg"
        assert len(csv.splitlines()) == month_dataset.config.n_days + 1


class TestFigure2:
    def test_histogram_shape(self, month_dataset):
        f = figure2(month_dataset)
        assert f.kind == "histogram"
        assert len(f.series["x"]) == len(f.series["y"])

    def test_moderate_parallelism_dominates(self, month_dataset):
        """Figure 2: 16/32/8-node jobs consume most walltime; >64-node
        jobs essentially none."""
        f = figure2(month_dataset)
        x, y = f.series["x"], f.series["y"]
        total = y.sum()
        moderate = y[(x == 8) | (x == 16) | (x == 32)].sum()
        wide = y[x > 64].sum()
        assert moderate > 0.5 * total
        assert wide < 0.1 * total

    def test_peak_at_16(self, month_dataset):
        f = figure2(month_dataset)
        assert f.series["x"][int(np.argmax(f.series["y"]))] == 16


class TestFigure3:
    def test_scatter_shape(self, month_dataset):
        f = figure3(month_dataset)
        assert f.kind == "scatter"
        assert len(f.series["x"]) == len(f.series["y"])
        assert len(f.series["x"]) > 50

    def test_rate_sustained_to_64_then_collapses(self, month_dataset):
        """Figure 3's headline shape."""
        f = figure3(month_dataset)
        x, y = f.series["x"], f.series["y"]
        mid = y[(x >= 8) & (x <= 64)]
        wide = y[x > 64]
        assert mid.mean() > 10.0
        if wide.size:
            assert wide.mean() < 0.6 * mid.mean()

    def test_peak_rate_in_paper_band(self, month_dataset):
        """Figure 3 peaks around 40 Mflops/node (at 24-32 nodes)."""
        f = figure3(month_dataset)
        x, y = f.series["x"], f.series["y"]
        assert 35.0 <= y.max() <= 60.0
        assert 16 <= x[int(np.argmax(y))] <= 48


class TestFigure4:
    def test_series_over_16_node_jobs(self, month_dataset):
        f = figure4(month_dataset)
        n16 = len(month_dataset.accounting.history_for_nodes(16))
        assert len(f.series["job_mflops"]) == n16
        assert len(f.series["job_ids"]) == n16

    def test_job_ids_ascending(self, month_dataset):
        ids = figure4(month_dataset).series["job_ids"]
        assert (np.diff(ids) > 0).all()

    def test_mean_near_320_mflops(self, month_dataset):
        """Figure 4: 16-node jobs average ≈320 Mflops with a wide
        spread (variance 200)."""
        rates = figure4(month_dataset).series["job_mflops"]
        assert 200.0 <= rates.mean() <= 480.0
        assert rates.std() > 60.0

    def test_other_node_counts_supported(self, month_dataset):
        f = figure4(month_dataset, nodes=8)
        assert "8-node" in f.title


class TestFigure5:
    def test_scatter_finite(self, month_dataset):
        f = figure5(month_dataset)
        assert np.isfinite(f.series["x"]).all()
        assert np.isfinite(f.series["y"]).all()

    def test_negative_correlation(self, month_dataset):
        """§6: high system intervention on low-performance days."""
        f = figure5(month_dataset)
        x, y = f.series["x"], f.series["y"]
        if x.size >= 5 and x.std() > 0:
            assert np.corrcoef(x, y)[0, 1] < 0.1

    def test_renders(self, month_dataset):
        assert "System Intervention" in figure5(month_dataset).render()


class TestFigure4AllCounts:
    def test_popular_counts_have_histories(self, month_dataset):
        from repro.analysis.figures import figure4_all_node_counts

        by_count = figure4_all_node_counts(month_dataset)
        assert 16 in by_count
        assert 8 in by_count

    def test_no_improvement_trend_anywhere(self, month_dataset):
        """§6: 'Similar trends occur for other processor counts.'"""
        from repro.analysis.figures import figure4_all_node_counts

        by_count = figure4_all_node_counts(month_dataset, min_jobs=25)
        assert by_count, "need at least one populous node count"
        for nodes, fig in by_count.items():
            rates = fig.series["job_mflops"]
            half = len(rates) // 2
            early, late = rates[:half].mean(), rates[half:].mean()
            assert late <= 1.5 * early + 30.0, nodes
